"""The fleet engine: many PhoenixEngines federated into one control plane.

:class:`FleetEngine` owns N *cells* — independent failure domains, each a
``(PhoenixEngine, StateBackend)`` pair built through the standard
:mod:`repro.api` machinery — and composes them behind one reconcile surface:

1. **Per-cell rounds.**  Every cell runs its own monitor → plan → execute
   round, serially or sharded across worker processes (``workers=N``).
   Parallel rounds are byte-identical to serial ones: workers run the same
   engine code on the same states and the results are merged in
   deterministic cell order (the discipline of the CLI's sharded sweep).
2. **Fleet coordination.**  Each round yields one
   :class:`~repro.fleet.summary.CellSummary` per cell; from those the fleet
   computes residual critical demand, asks the configured
   :class:`~repro.fleet.spillover.SpilloverPolicy` for donor placements,
   and applies them two-phase — plan first over every donor's free
   capacity, then register clone applications on the donors and let each
   donor's *own* engine place them (so no cross-cell action can violate a
   cell's capacity).
3. **Events.**  Per-cell engine events are re-emitted on the fleet-level
   bus wrapped in :class:`~repro.fleet.events.CellEvent`; the federation
   layer adds :class:`~repro.fleet.events.CellDegraded`,
   :class:`~repro.fleet.events.SpilloverPlanned` and
   :class:`~repro.fleet.events.SpilloverReleased`.

A single-cell fleet is a transparent facade: its reports and its state
evolution are byte-identical to driving the bare :class:`PhoenixEngine`
directly (no spillover donors exist, so the federation layer never acts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, NamedTuple, Sequence

from repro import obs
from repro.adaptlab.metrics import potential_revenue
from repro.api.engine import PhoenixEngine
from repro.api.events import (
    ActionsExecuted,
    EventBus,
    FailureDetected,
    Observer,
    PlanComputed,
    RecoveryDetected,
)
from repro.cluster.state import ClusterState
from repro.core.controller import ReconcileReport, StateBackend

from repro.fleet.config import FleetConfig
from repro.fleet.events import (
    CellDegraded,
    CellEvent,
    SpilloverPlanned,
    SpilloverReleased,
)
from repro.fleet.partition import partition_state
from repro.fleet.spillover import (
    DonorCapacity,
    MsSpec,
    ResidualDemand,
    SpilloverAssignment,
    build_clone_application,
    resolve_spillover,
)
from repro.fleet.summary import (
    CellSummary,
    clone_name,
    fleet_availability,
    fleet_revenue,
    fleet_utilization,
    is_clone,
    summarize_cell,
)


class Cell:
    """One failure domain: a named (engine, backend) pair plus its reference.

    ``reference_revenue`` is the cell's pre-failure revenue potential,
    frozen at fleet construction — the denominator for fleet-level revenue
    normalization (clones registered later earn into the numerator only).
    """

    __slots__ = ("name", "engine", "backend", "reference_revenue")

    def __init__(
        self,
        name: str,
        engine: PhoenixEngine,
        backend: StateBackend,
        reference_revenue: float,
    ) -> None:
        self.name = name
        self.engine = engine
        self.backend = backend
        self.reference_revenue = reference_revenue

    @property
    def state(self) -> ClusterState:
        return self.backend.state

    def __repr__(self) -> str:
        return f"Cell(name={self.name!r}, nodes={len(self.state.nodes)})"


class SpilloverEntry(NamedTuple):
    """Ledger record: one active spillover of one application."""

    donor: str
    microservices: tuple[str, ...]
    assignment: SpilloverAssignment


@dataclass(frozen=True)
class RoundPlan:
    """The federation decisions of one round (pure; applied separately).

    ``releases`` are ledger entries to withdraw (source recovered or plan
    superseded), ``assignments`` the newly planned spillovers, ``degraded``
    the per-cell *new* residual demand (event payloads), ``unplaced`` the
    residuals no donor could take this round.
    """

    releases: tuple[tuple[tuple[str, str], SpilloverEntry], ...] = ()
    assignments: tuple[SpilloverAssignment, ...] = ()
    degraded: tuple[tuple[str, tuple[tuple[str, str], ...]], ...] = ()
    unplaced: tuple[tuple[str, str], ...] = ()
    residuals: tuple[tuple[str, str], ...] = ()
    #: Donor capacities the plan was computed against (for failure records).
    donors: tuple[DonorCapacity, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.releases or self.assignments)


@dataclass
class FleetReport:
    """What happened during one fleet reconcile round."""

    cell_reports: dict[str, ReconcileReport] = field(default_factory=dict)
    spillover_reports: dict[str, ReconcileReport] = field(default_factory=dict)
    summaries: dict[str, CellSummary] = field(default_factory=dict)
    degraded_cells: tuple[str, ...] = ()
    planned: tuple[SpilloverAssignment, ...] = ()
    released: tuple[SpilloverAssignment, ...] = ()
    unplaced: tuple[tuple[str, str], ...] = ()
    availability: float = 1.0
    revenue: float = 0.0
    utilization: float = 0.0

    @property
    def triggered(self) -> bool:
        return (
            any(r.triggered for r in self.cell_reports.values())
            or bool(self.planned)
            or bool(self.released)
        )

    @property
    def actions_executed(self) -> int:
        return sum(r.actions_executed for r in self.cell_reports.values()) + sum(
            r.actions_executed for r in self.spillover_reports.values()
        )


def state_signature(state: ClusterState) -> tuple:
    """Cheap drift check for the pooled reconcile's delta protocol.

    Assignment count plus the all-nodes capacity/usage accumulators, all
    bit-exact: node health changes touch none of them, so a mismatch means
    the parent state mutated in a way a health delta cannot express and the
    worker shard needs a full resync.
    """
    used = state.total_used(healthy_only=False)
    capacity = state.total_capacity(healthy_only=False)
    return (len(state.assignments), used.cpu, used.memory, capacity.cpu, capacity.memory)


def step_cells(
    cells: Sequence[Cell],
    events_by_cell: Mapping[str, Sequence],
    seed: int,
    force: bool,
    *,
    with_events: bool = True,
) -> list[CellSummary]:
    """Apply trace events and run one reconcile round per cell, in order.

    The single implementation behind both replay executors (the serial
    in-process one and the worker shards): one copy of the step logic is
    what makes the serial-vs-sharded byte-identity contract structural
    rather than a discipline three call sites must each uphold.

    ``with_events=False`` is the observer fast path: the per-node
    failure/recovery name tuples exist *only* to feed fleet-bus event
    payloads, so when the replay's bus has no subscribers the summaries
    skip building (and, sharded, shipping) them — a whole-cell outage
    otherwise drags tens of thousands of node names through the pipe per
    step that nobody reads.  Federation decisions and metrics never touch
    those tuples, so the replay output is byte-identical either way.
    """
    from repro.traces.replayer import apply_trace_event

    summaries: list[CellSummary] = []
    for cell in cells:
        for event in events_by_cell.get(cell.name, ()):
            apply_trace_event(cell.state, event, seed=seed)
        report = cell.engine.reconcile(cell.backend, force=force)
        summaries.append(
            summarize_cell(
                cell.name,
                cell.state,
                cell.reference_revenue,
                triggered=report.triggered,
                failed_nodes=report.failed_nodes if with_events else (),
                recovered_nodes=report.recovered_nodes if with_events else (),
                actions=report.actions_executed,
            )
        )
    return summaries


def adjust_cells(
    cells: Sequence[Cell],
    removes: Sequence[tuple[str, str]],
    adds: Sequence[SpilloverAssignment],
) -> tuple[dict[str, CellSummary], dict[str, ReconcileReport], list[SpilloverAssignment]]:
    """Withdraw and register spillover clones on ``cells`` (phase two).

    All removals land before any registration (two-phase, like the action
    applier), then each receiving donor runs one *forced* engine round so
    its own planner places the guests under real per-node capacity.  A
    clone the donor could not fully run — aggregate capacity fit at the
    fleet level but per-node packing refused — is **rolled back** on the
    spot and returned in the failed list, so no stranded half-placed clone
    ever survives a round.  Cells not present in ``cells`` are skipped
    (worker shards only own a subset).  Returns post-adjust summaries for
    every touched cell, the donors' forced-round reports, and the failed
    assignments (order follows the given cell order; consumers must not
    depend on it).
    """
    by_name = {cell.name: cell for cell in cells}
    touched: dict[str, None] = {}
    receiving: dict[str, list[SpilloverAssignment]] = {}
    for donor_name, app_name in removes:
        cell = by_name.get(donor_name)
        if cell is None:
            continue
        if app_name in cell.state.applications:
            cell.state.remove_application(app_name)
        touched[donor_name] = None
    for assignment in adds:
        cell = by_name.get(assignment.donor_cell)
        if cell is None:
            continue
        cell.state.add_application(build_clone_application(assignment))
        touched[assignment.donor_cell] = None
        receiving.setdefault(assignment.donor_cell, []).append(assignment)
    reports: dict[str, ReconcileReport] = {}
    failed: list[SpilloverAssignment] = []
    for cell in cells:  # deterministic donor order within this cell set
        placed = receiving.get(cell.name)
        if not placed:
            continue
        reports[cell.name] = cell.engine.reconcile(cell.backend, force=True)
        for assignment in placed:
            name = clone_name(assignment.app, assignment.source_cell)
            running = all(
                cell.state.running_replicas(name, ms.name) >= ms.replicas
                for ms in assignment.microservices
            )
            if not running:
                cell.state.remove_application(name)
                failed.append(assignment)
    summaries = {
        name: summarize_cell(
            name,
            by_name[name].state,
            by_name[name].reference_revenue,
            triggered=name in reports,
            actions=reports[name].actions_executed if name in reports else 0,
        )
        for name in touched
    }
    return summaries, reports, failed


class FleetEngine:
    """Facade federating many :class:`PhoenixEngine` cells into one fleet.

    Parameters
    ----------
    config:
        Fleet description (cell count, partitioner, spillover policy,
        per-cell engine overrides); defaults to ``FleetConfig()``.
    state:
        A whole-cluster state to partition into ``config.cells`` cells via
        the configured partitioner.  Mutually exclusive with ``states``.
    states:
        Explicit per-cell states (sequence in cell order, or a mapping of
        cell name to state).
    observers:
        Handlers subscribed to the fleet event bus at construction.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        state: ClusterState | None = None,
        states: Sequence[ClusterState] | Mapping[str, ClusterState] | None = None,
        observers: Iterable[Observer] = (),
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        if (state is None) == (states is None):
            raise ValueError("pass exactly one of `state` (to partition) or `states`")
        names = self.config.resolved_cell_names()
        if state is not None:
            cell_states = partition_state(
                state,
                self.config.cells,
                self.config.partitioner,
                seed=self.config.partition_seed,
            )
        elif isinstance(states, Mapping):
            missing = [n for n in names if n not in states]
            if missing:
                raise ValueError(f"states mapping is missing cells: {missing}")
            cell_states = [states[n] for n in names]
        else:
            cell_states = list(states)
        if len(cell_states) != self.config.cells:
            raise ValueError(
                f"expected {self.config.cells} cell states, got {len(cell_states)}"
            )
        self.cells: list[Cell] = [
            Cell(
                name,
                PhoenixEngine(self.config.engine_config_for(name)),
                StateBackend(cell_state),
                potential_revenue(cell_state),
            )
            for name, cell_state in zip(names, cell_states)
        ]
        self._by_name = {cell.name: cell for cell in self.cells}
        self.policy = resolve_spillover(
            self.config.spillover,
            objective=self.config.objective,
            implementation=self.config.implementation,
        )
        self.events = EventBus()
        for observer in observers:
            self.events.subscribe(observer)
        #: (source cell, app) -> active spillover.
        self._ledger: dict[tuple[str, str], SpilloverEntry] = {}
        #: (source cell, app) -> residual ms tuple of the previous round
        #: (CellDegraded fires only when a cell's residual *changes*).
        self._last_residuals: dict[tuple[str, str], tuple[str, ...]] = {}
        #: (source cell, app, donor) -> donor (free cpu, free mem) at the
        #: time the donor's engine refused to place the clone — the plan
        #: skips that donor for that residual until its capacity improves.
        self._spill_failures: dict[tuple[str, str, str], tuple[float, float]] = {}
        #: (cell, app) -> (price, ms name -> spec); seeded at construction
        #: and extended lazily by :meth:`_spec_for` for applications
        #: registered on a cell afterwards.  (Sharded replays cannot add
        #: applications mid-run — trace events only touch nodes — so the
        #: lazy path never diverges between serial and parallel modes.)
        self._app_specs: dict[tuple[str, str], tuple[float, dict[str, MsSpec]]] = {}
        for cell in self.cells:
            for app_name in cell.state.applications:
                self._spec_for(cell.name, app_name)
        #: Persistent shard pool for reconcile(workers>1); created lazily on
        #: the first parallel round and reused across rounds (ship states
        #: once, then per-round deltas).
        self._pool = None
        self._pool_workers = 0
        #: cell name -> (failure order, state signature, dirty generation)
        #: at last worker sync.
        self._sync: dict[str, tuple[tuple[str, ...], tuple, int]] = {}
        #: Test hook: worker-fault injection handed to the pool at creation —
        #: the legacy (shard index, nth command) kill tuple or a composable
        #: repro.chaos.infra.FaultPlan (see repro.fleet.pool.ShardPool).
        self._shard_fault: object | None = None
        #: Test hook: ShardPool substitute (the infra-chaos fuzzer plants
        #: deliberately broken supervisors through this).
        self._pool_class: type | None = None

    # -- introspection ---------------------------------------------------------
    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(cell.name for cell in self.cells)

    def cell(self, name: str) -> Cell:
        return self._by_name[name]

    @property
    def spillovers(self) -> Mapping[tuple[str, str], SpilloverEntry]:
        """Read-only view of the active spillover ledger."""
        return dict(self._ledger)

    def __repr__(self) -> str:
        return f"FleetEngine(cells={len(self.cells)}, policy={self.policy.name!r})"

    # -- summaries -------------------------------------------------------------
    def summarize(self) -> list[CellSummary]:
        """Current per-cell summaries, without running a round."""
        return [
            summarize_cell(cell.name, cell.state, cell.reference_revenue)
            for cell in self.cells
        ]

    def summary(self) -> dict[str, CellSummary]:
        """Public per-cell snapshot: cell name → picklable :class:`CellSummary`.

        The supported way for frontends (the serve layer, the CLI, external
        observers) to read fleet state without touching cell internals.
        Pure read: no round runs, no detector state moves.
        """
        return {cell.name: summary for cell, summary in zip(self.cells, self.summarize())}

    def availability(self) -> float:
        """Fleet-wide critical availability (spillover coverage included)."""
        return fleet_availability(self.summarize(), self._ledger)

    # -- the reconcile surface -------------------------------------------------
    def reconcile(self, force: bool = False, workers: int | None = None) -> FleetReport:
        """One fleet round: per-cell reconciles, then cross-cell spillover.

        ``workers`` > 1 shards the per-cell rounds across persistent worker
        processes (or threads, with ``config.executor="thread"``); the
        merged outcome is byte-identical to a serial round (worker results
        are folded back in cell order, and the federation phase always runs
        in the parent).  ``force`` forces every cell's round.

        The process pool is created on the first parallel call and **kept**:
        workers own their cells' engines and states across rounds, the
        parent ships only per-round health deltas (derived from the states'
        dirty sets) and mirrors the workers' actions onto its own copies —
        so steady-state IPC is O(churn + report), not O(cluster).  Parent
        states stay authoritative: mutate them freely between rounds (node
        health and structural changes are picked up; structural ones cost a
        one-off state resync).

        With supervision on (``config.supervise``, the default) a dead,
        hung or corrupt worker is restarted — re-seeded from the parent's
        authoritative states with the in-flight round replayed, so the
        merged outcome stays byte-identical — and a crash-looping shard
        degrades (its cells re-home to surviving workers) instead of
        failing the call; :class:`~repro.fleet.events.ShardRestarted` /
        :class:`~repro.fleet.events.ShardDegraded` surface on the fleet
        bus.  With ``supervise=False`` a worker fault raises
        :exc:`repro.fleet.pool.ShardFailure` *before* any fold-back,
        leaving the fleet state unchanged; the next call rebuilds the pool.
        """
        with obs.tracer().span("fleet.round"):
            report = self._reconcile(force, workers)
        registry = obs.registry()
        if registry.enabled:
            registry.counter("fleet.rounds").inc()
            if report.planned:
                registry.counter("fleet.spillovers_planned").inc(len(report.planned))
            if report.released:
                registry.counter("fleet.spillovers_released").inc(len(report.released))
        return report

    def _reconcile(self, force: bool, workers: int | None) -> FleetReport:
        workers = self.config.workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be >= 1")
        reports = self._phase_cells(force, min(workers, len(self.cells)))
        for cell, report in zip(self.cells, reports):
            self._emit_cell_report(cell.name, report)
        summaries = [
            summarize_cell(
                cell.name,
                cell.state,
                cell.reference_revenue,
                triggered=report.triggered,
                failed_nodes=report.failed_nodes,
                recovered_nodes=report.recovered_nodes,
                actions=report.actions_executed,
            )
            for cell, report in zip(self.cells, reports)
        ]
        plan = self.plan_spillover(summaries)
        updated, spill_reports, failed = self.apply_spillover(plan)
        self.commit_spillover(plan, failed)
        for donor_name, report in spill_reports.items():
            self._emit_cell_report(donor_name, report)
        final = {s.cell: s for s in summaries}
        final.update(updated)
        ordered = [final[cell.name] for cell in self.cells]
        failed_keys = {(a.source_cell, a.app) for a in failed}
        return FleetReport(
            cell_reports={c.name: r for c, r in zip(self.cells, reports)},
            spillover_reports=spill_reports,
            summaries=final,
            degraded_cells=tuple(cell for cell, _ in plan.degraded),
            planned=tuple(
                a
                for a in plan.assignments
                if (a.source_cell, a.app) not in failed_keys
            ),
            released=tuple(e.assignment for _, e in plan.releases),
            unplaced=plan.unplaced
            + tuple((a.source_cell, a.app) for a in failed),
            availability=fleet_availability(ordered, self._ledger),
            revenue=fleet_revenue(ordered),
            utilization=fleet_utilization(ordered),
        )

    def _phase_cells(self, force: bool, workers: int) -> list[ReconcileReport]:
        """Per-cell rounds, serial, threaded or sharded; results in cell order."""
        if workers <= 1 or len(self.cells) == 1:
            return [cell.engine.reconcile(cell.backend, force=force) for cell in self.cells]
        if self.config.executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            # In-process: no serialization, no mirroring, each task owns one
            # cell.  map() preserves cell order, so the fold-back is
            # identical to the serial loop's.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda cell: cell.engine.reconcile(cell.backend, force=force),
                        self.cells,
                    )
                )
        return self._phase_cells_pooled(force, workers)

    def _ensure_pool(self, workers: int):
        """The persistent shard pool, (re)built when absent or resized."""
        from repro.fleet.pool import ShardPool

        if self._pool is not None and self._pool_workers != workers:
            self.close()
        if self._pool is None:
            pool_class = self._pool_class or ShardPool
            self._pool = pool_class(
                self.cells,
                workers=workers,
                codec=self.config.codec,
                fault=self._shard_fault,
                supervisor=self.config.supervisor_config(),
                on_event=self.events.emit,
            )
            self._pool_workers = workers
            # The pool just shipped the current states; baseline the delta
            # tracking against them (drain discards pre-existing dirt).
            for cell in self.cells:
                drained = cell.state.drain_dirty()
                self._sync[cell.name] = (
                    cell.state.failure_order(),
                    state_signature(cell.state),
                    drained.end_generation,
                )
        return self._pool

    def _cell_delta(self, cell: Cell) -> tuple:
        """What one worker shard needs to catch up to the parent's state.

        Health-only churn (the supported between-rounds mutation, and the
        only kind trace replays produce) ships as an O(churn) diff against
        the failure registry *in failure order* — that order drives
        eviction order and therefore every downstream byte — plus the
        parent's healthy-capacity float accumulators, which the worker
        adopts bit-for-bit (the diff may reach the same failed set through
        a different op sequence, and float addition is not associative).
        Structural changes (applications or nodes added/removed, e.g. by a
        spillover adjustment), signature drift, and competing dirty-set
        consumers (a serial engine round drained dirt this tracker never
        saw — detected via the generation token, PR 4's discipline) all
        fall back to shipping the whole state.
        """
        state = cell.state
        dirty = state.drain_dirty()
        synced = self._sync.get(cell.name)
        current = state.failure_order()
        signature = state_signature(state)
        if (
            synced is None
            or dirty.structural
            or dirty.base_generation != synced[2]
            or signature != synced[1]
        ):
            registry = obs.registry()
            if registry.enabled:
                registry.counter("fleet.state_resyncs").inc()
            return ("full", state, cell.engine.known_failed)
        last = synced[0]
        common = 0
        for a, b in zip(last, current):
            if a != b:
                break
            common += 1
        return ("delta", last[common:], current[common:], state.health_aggregates())

    def _phase_cells_pooled(self, force: bool, workers: int) -> list[ReconcileReport]:
        """One pooled round: ship deltas, gather reports, mirror actions.

        The workers' engines run the round; the parent replays each
        triggered cell's ordered action list onto its own state through
        :func:`repro.core.scheduler.apply_actions` — the *same* single
        mutation path a serial round uses — so parent and worker states
        stay bit-identical without shipping states back.  All replies are
        gathered before any mirroring, so a worker failure leaves the
        fleet state untouched.
        """
        from repro.core.scheduler import apply_actions
        from repro.fleet.pool import ShardFailure

        pool = self._ensure_pool(workers)
        deltas = {cell.name: self._cell_delta(cell) for cell in self.cells}
        try:
            replies = pool.round(deltas, force)
        except ShardFailure:
            self._pool = None
            self._sync.clear()
            raise
        reports: list[ReconcileReport] = []
        for cell, (report, known) in zip(self.cells, replies):
            if report.triggered and report.schedule is not None:
                apply_actions(cell.state, report.schedule.ordered_actions())
            cell.engine.known_failed = known
            # Absorb the mirror's dirt and re-baseline for the next delta.
            drained = cell.state.drain_dirty()
            self._sync[cell.name] = (
                cell.state.failure_order(),
                state_signature(cell.state),
                drained.end_generation,
            )
            reports.append(report)
        return reports

    def _emit_cell_report(self, cell: str, report: ReconcileReport) -> None:
        """Re-emit one cell round's engine events, tagged, on the fleet bus."""
        bus = self.events
        if not bus:
            return
        if report.failed_nodes:
            bus.emit(CellEvent(cell, FailureDetected(nodes=tuple(report.failed_nodes))))
        if report.recovered_nodes:
            bus.emit(CellEvent(cell, RecoveryDetected(nodes=tuple(report.recovered_nodes))))
        if report.triggered and report.schedule is not None:
            bus.emit(
                CellEvent(
                    cell,
                    PlanComputed(
                        plan=report.plan,
                        schedule=report.schedule,
                        planning_seconds=report.planning_seconds,
                    ),
                )
            )
            bus.emit(
                CellEvent(
                    cell,
                    ActionsExecuted(actions=tuple(report.schedule.ordered_actions())),
                )
            )

    # -- federation phases (shared with the replay executors) -------------------
    def _spec_for(self, cell: str, app: str) -> tuple[float, dict[str, MsSpec]] | None:
        """The (price, ms specs) of one application, cached lazily.

        Reads the parent-held cell state on a miss, so applications
        registered after fleet construction still participate in spillover
        planning.  Returns ``None`` for unknown or clone applications.
        """
        key = (cell, app)
        spec = self._app_specs.get(key)
        if spec is None and not is_clone(app):
            application = self._by_name[cell].state.applications.get(app)
            if application is None:
                return None
            spec = (
                application.price_per_unit,
                {
                    ms.name: MsSpec(
                        name=ms.name,
                        cpu=ms.resources.cpu,
                        memory=ms.resources.memory,
                        replicas=ms.replicas,
                        criticality=ms.criticality.level,
                        stateful=ms.stateful,
                    )
                    for ms in application
                },
            )
            self._app_specs[key] = spec
        return spec

    def plan_spillover(self, summaries: Sequence[CellSummary]) -> RoundPlan:
        """Pure federation decision for one round, from per-cell summaries.

        Reads (but does not mutate) the ledger and the placement-failure
        memory: releases for recovered sources, residual demand for
        uncovered critical microservices, the policy's donor assignments
        for those residuals.  Donors that previously refused a residual's
        clone are skipped until their free capacity improves, with the
        policy re-planned against the remaining donors.  Deterministic in
        the summaries, so serial and parallel rounds decide identically.
        """
        releases: list[tuple[tuple[str, str], SpilloverEntry]] = []
        residuals: list[ResidualDemand] = []
        degraded: dict[str, list[tuple[str, str]]] = {}
        degraded_cells = {s.cell for s in summaries if s.degraded}
        for summary in summaries:
            missing: dict[str, tuple[str, ...]] = {}
            for app, ms in summary.missing_critical:
                if self._spec_for(summary.cell, app) is not None:
                    missing[app] = ms
            for (cell, app), entry in self._ledger.items():
                if cell != summary.cell:
                    continue
                lacking = missing.get(app)
                if lacking is None:
                    releases.append(((cell, app), entry))  # source recovered
                elif entry.donor in degraded_cells or not set(lacking) <= set(
                    entry.microservices
                ):
                    # The donor itself degraded (cascading failure) or the
                    # source's degradation deepened past the clone: supersede
                    # the entry and re-plan the full residual below.
                    releases.append(((cell, app), entry))
            released_keys = {key for key, _ in releases}
            for app, lacking in missing.items():
                key = (summary.cell, app)
                if key in self._ledger and key not in released_keys:
                    continue  # covered by an active spillover
                price, specs = self._app_specs[key]
                demand = ResidualDemand(
                    cell=summary.cell,
                    app=app,
                    price_per_unit=price,
                    microservices=tuple(
                        specs[name] for name in specs if name in set(lacking)
                    ),
                )
                residuals.append(demand)
                if self._last_residuals.get(key) != lacking:
                    degraded.setdefault(summary.cell, []).append((app, lacking))
        donors = [
            DonorCapacity(summary.cell, summary.free_cpu, summary.free_mem)
            for summary in summaries
            if not summary.degraded
        ]
        assignments = self._plan_assignments(donors, residuals)
        assigned = {(a.source_cell, a.app) for a in assignments}
        unplaced = tuple(
            (r.cell, r.app) for r in residuals if (r.cell, r.app) not in assigned
        )
        degraded_rows = tuple(
            (cell, tuple((app, ms) for app, lacking in rows for ms in lacking))
            for cell, rows in degraded.items()
        )
        return RoundPlan(
            releases=tuple(releases),
            assignments=assignments,
            degraded=degraded_rows,
            unplaced=unplaced,
            residuals=tuple((r.cell, r.app) for r in residuals),
            donors=tuple(donors),
        )

    def _plan_assignments(
        self, donors: list[DonorCapacity], residuals: list[ResidualDemand]
    ) -> tuple[SpilloverAssignment, ...]:
        """Run the policy, excluding donors known to refuse what they get.

        A donor whose engine previously rolled back a residual's clone
        (per-node fragmentation the aggregate capacity hides) is *stale*
        for that residual until its free capacity grows past the recorded
        failure point.  When the policy picks a stale pairing, the donor is
        dropped from the pool and the policy re-planned — at most one
        iteration per donor, fully deterministic.
        """
        if not donors or not residuals:
            return ()
        donor_by_cell = {donor.cell: donor for donor in donors}
        excluded: set[str] = set()
        while True:
            pool = [donor for donor in donors if donor.cell not in excluded]
            candidates = tuple(self.policy.plan(pool, residuals))
            stale: set[str] = set()
            for assignment in candidates:
                record = self._spill_failures.get(
                    (assignment.source_cell, assignment.app, assignment.donor_cell)
                )
                if record is None:
                    continue
                donor = donor_by_cell[assignment.donor_cell]
                if (
                    donor.free_cpu <= record[0] + 1e-9
                    and donor.free_mem <= record[1] + 1e-9
                ):
                    stale.add(assignment.donor_cell)
            if not stale:
                return candidates
            excluded |= stale

    def apply_spillover(
        self, plan: RoundPlan
    ) -> tuple[
        dict[str, CellSummary],
        dict[str, ReconcileReport],
        list[SpilloverAssignment],
    ]:
        """Apply a round plan to the parent-held cell states (two-phase).

        Phase one already happened (the plan was computed against every
        donor's free capacity); this is phase two, delegated to
        :func:`adjust_cells`: withdraw released clones, register the newly
        planned ones, one *forced* engine round per receiving donor, and
        roll back clones the donor could not actually run.  Returns fresh
        summaries, the donors' forced-round reports, and the rolled-back
        assignments (feed them to :meth:`commit_spillover`).
        """
        removes = [
            (entry.donor, clone_name(app, cell)) for (cell, app), entry in plan.releases
        ]
        return adjust_cells(self.cells, removes, plan.assignments)

    def commit_spillover(
        self, plan: RoundPlan, failed: Sequence[SpilloverAssignment] = ()
    ) -> None:
        """Record a round's outcome in the ledger and emit federation events.

        ``failed`` are assignments phase two rolled back (the donor's
        engine could not run the clone); they get a placement-failure
        record — keyed by the donor capacity the plan saw — instead of a
        ledger entry, so the next round re-plans them against other donors
        and retries this one only once its capacity improves.
        """
        bus = self.events
        failed_keys = {(a.source_cell, a.app) for a in failed}
        donor_by_cell = {donor.cell: donor for donor in plan.donors}
        residual_keys = set(plan.residuals)
        for cell, missing in plan.degraded:
            if bus:
                bus.emit(CellDegraded(cell=cell, missing=missing))
        for key, entry in plan.releases:
            self._ledger.pop(key, None)
            if bus:
                assignment = entry.assignment
                bus.emit(
                    SpilloverReleased(
                        source_cell=assignment.source_cell,
                        donor_cell=assignment.donor_cell,
                        app=assignment.app,
                        microservices=entry.microservices,
                    )
                )
            if key not in residual_keys:
                # Source fully recovered: forget its placement failures so a
                # future incident starts with a clean donor slate.
                self._spill_failures = {
                    k: v for k, v in self._spill_failures.items() if k[:2] != key
                }
        for assignment in plan.assignments:
            key = (assignment.source_cell, assignment.app)
            donor_key = (assignment.source_cell, assignment.app, assignment.donor_cell)
            if key in failed_keys:
                donor = donor_by_cell.get(assignment.donor_cell)
                if donor is not None:
                    self._spill_failures[donor_key] = (donor.free_cpu, donor.free_mem)
                continue
            self._spill_failures.pop(donor_key, None)
            names = tuple(ms.name for ms in assignment.microservices)
            self._ledger[key] = SpilloverEntry(
                donor=assignment.donor_cell,
                microservices=names,
                assignment=assignment,
            )
            if bus:
                bus.emit(
                    SpilloverPlanned(
                        source_cell=assignment.source_cell,
                        donor_cell=assignment.donor_cell,
                        app=assignment.app,
                        microservices=names,
                        cpu=assignment.cpu,
                        memory=assignment.memory,
                    )
                )
        # Residual snapshot for the next round's CellDegraded dedup: keep
        # exactly the residuals seen this round (planned or not).
        snapshot: dict[tuple[str, str], tuple[str, ...]] = {}
        for cell, missing in plan.degraded:
            by_app: dict[str, list[str]] = {}
            for app, ms in missing:
                by_app.setdefault(app, []).append(ms)
            for app, names in by_app.items():
                snapshot[(cell, app)] = tuple(names)
        for key in plan.residuals:
            if key not in snapshot:
                snapshot[key] = self._last_residuals.get(key, ())
        self._last_residuals = snapshot

    def reset(self) -> None:
        """Forget detection state in every cell engine (scenario replays).

        Also tears down the persistent reconcile pool: worker shards hold
        detector checkpoints that a reset must not survive.  The next
        parallel round rebuilds the pool from the current states.
        """
        self.close()
        for cell in self.cells:
            cell.engine.reset()

    def close(self) -> None:
        """Stop the persistent reconcile worker pool, if one is running.

        Idempotent; the fleet stays fully usable (serial rounds need no
        pool, and the next parallel round builds a fresh one).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._sync.clear()

    def __enter__(self) -> "FleetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
