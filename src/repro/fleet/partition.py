"""Deterministic partitioners: map nodes and applications onto fleet cells.

A partitioner decides which cell of a fleet owns each node and each
application.  Determinism is the whole contract: the mapping must be a pure
function of the names, the seed and the cell count — byte-identical across
runs, across processes and across ``PYTHONHASHSEED`` values — because fleet
construction happens independently in the CLI's worker processes and a
partition disagreement would silently split one application across two
cells' planners.

Python's built-in ``hash`` is salted per process, so every partitioner here
routes through :func:`stable_cell`, a keyed BLAKE2 digest of the name.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, runtime_checkable

from repro.cluster.application import Application
from repro.cluster.node import Node
from repro.cluster.state import ClusterState


def stable_cell(token: str, cells: int, seed: int = 0) -> int:
    """Deterministic cell index for ``token`` — stable across processes.

    A keyed 8-byte BLAKE2s digest reduced modulo ``cells``; unlike ``hash``
    it does not depend on ``PYTHONHASHSEED``, so the same (token, seed,
    cells) triple yields the same cell everywhere, always.
    """
    if cells <= 0:
        raise ValueError("cells must be positive")
    key = (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    digest = hashlib.blake2s(token.encode("utf-8"), key=key, digest_size=8).digest()
    return int.from_bytes(digest, "little") % cells


@runtime_checkable
class Partitioner(Protocol):
    """Maps nodes and applications to cell indexes, deterministically.

    Implementations must be pure functions of their construction arguments
    and the inputs — no process-local state, no salted hashing — so that a
    fleet rebuilt in another process partitions identically.
    """

    name: str

    def cell_of_node(self, node: Node, cells: int) -> int: ...

    def cell_of_app(self, app: Application, cells: int) -> int: ...


class HashPartitioner:
    """Stock partitioner: stable keyed hash of the node/application name."""

    name = "hash"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def cell_of_node(self, node: Node, cells: int) -> int:
        return stable_cell(node.name, cells, self.seed)

    def cell_of_app(self, app: Application, cells: int) -> int:
        return stable_cell(app.name, cells, self.seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class RackAwarePartitioner(HashPartitioner):
    """Keep failure domains together: nodes sharing a rack label co-locate.

    Nodes carrying the ``label`` (default ``"rack"``) are partitioned by the
    label *value*, so a whole rack lands in one cell and a rack-level outage
    stays a single-cell event.  Unlabeled nodes fall back to the name hash.
    Applications are partitioned by name, as in :class:`HashPartitioner`.
    """

    name = "rack"

    def __init__(self, label: str = "rack", seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.label = label

    def cell_of_node(self, node: Node, cells: int) -> int:
        token = node.labels.get(self.label)
        if token is None:
            return stable_cell(node.name, cells, self.seed)
        return stable_cell(f"{self.label}={token}", cells, self.seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label!r}, seed={self.seed})"


#: Partitioner spellings accepted by :func:`resolve_partitioner`.
PARTITIONERS = {
    "hash": HashPartitioner,
    "rack": RackAwarePartitioner,
}


def resolve_partitioner(spec, seed: int = 0) -> Partitioner:
    """Turn a partitioner spec (instance or name) into a partitioner.

    Accepted names: ``"hash"`` and ``"rack"``; instances pass through
    unchanged (their own seed wins over ``seed``).
    """
    if isinstance(spec, str):
        try:
            return PARTITIONERS[spec.lower()](seed=seed)
        except KeyError:
            raise ValueError(
                f"unknown partitioner {spec!r}; expected one of "
                f"{sorted(PARTITIONERS)} or a Partitioner instance"
            ) from None
    if isinstance(spec, Partitioner):
        return spec
    raise TypeError(
        f"partitioner must be a Partitioner or a name, got {type(spec).__name__}"
    )


def partition_state(
    state: ClusterState,
    cells: int,
    partitioner: Partitioner | str = "hash",
    seed: int = 0,
) -> list[ClusterState]:
    """Split one cluster state into ``cells`` per-cell states.

    Nodes are copied (each cell owns its health), applications are shared
    (immutable).  Existing assignments are preserved when a replica's
    application and node land in the same cell; replicas split across cells
    by the partition are dropped — the fleet's first forced reconcile
    re-places them inside their owning cell.  Iteration follows the source
    state's registration order, so the result is deterministic.
    """
    partitioner = resolve_partitioner(partitioner, seed=seed)
    states = [ClusterState() for _ in range(cells)]
    node_cell: dict[str, int] = {}
    for node in state.nodes.values():
        index = partitioner.cell_of_node(node, cells)
        node_cell[node.name] = index
        states[index].add_node(
            Node(node.name, node.capacity, node.failed, dict(node.labels))
        )
    app_cell: dict[str, int] = {}
    for app in state.applications.values():
        index = partitioner.cell_of_app(app, cells)
        app_cell[app.name] = index
        states[index].add_application(app)
    for replica, node_name in state.assignments.items():
        index = app_cell[replica.app]
        if node_cell[node_name] == index and not state.nodes[node_name].failed:
            states[index].assign(replica, node_name)
    return states
