"""``repro.fleet`` — many PhoenixEngines, one sharded, parallel control plane.

The paper's recovery planner is per-cluster; production fleets are many
failure domains (*cells*).  This package federates N per-cell engines —
each one a ``(PhoenixEngine, StateBackend)`` pair built through the
standard :mod:`repro.api` machinery — behind one reconcile surface with
cross-cell capacity spillover:

>>> from repro.fleet import FleetConfig, FleetEngine
>>> fleet = FleetEngine(FleetConfig(cells=4), states=cell_states)  # doctest: +SKIP
>>> report = fleet.reconcile(workers=4)                            # doctest: +SKIP
>>> report.availability, report.planned                            # doctest: +SKIP

Building blocks:

* :class:`FleetConfig` — :class:`~repro.api.config.EngineConfig` plus the
  federation surface (cell count, partitioner, spillover policy, per-cell
  overrides, default worker count).
* :class:`Partitioner` protocol with stock :class:`HashPartitioner` and
  :class:`RackAwarePartitioner` — deterministic node/application → cell
  mapping (stable across processes and ``PYTHONHASHSEED``).
* :class:`SpilloverPolicy` protocol with stock :class:`PackedSpillover` —
  a second, fleet-level plan→pack round over a synthetic cell-as-node
  state — and :class:`NoSpillover` (strict isolation).
* :class:`FleetEngine` — per-cell rounds (serial or ``workers=N``,
  byte-identical either way), residual-demand detection, two-phase
  spillover application, and a fleet-level event bus
  (:class:`CellEvent`-wrapped engine events plus :class:`CellDegraded`,
  :class:`SpilloverPlanned`, :class:`SpilloverReleased`).
* :class:`FleetReplayer` — drives a fleet through a per-cell scenario
  mapping (see :func:`repro.traces.fleet_scenario`), serially or with a
  persistent worker shard per cell group; metrics JSONL is byte-identical
  across worker counts.
"""

from repro.fleet.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.fleet.config import FleetConfig, SupervisorConfig, default_cell_names
from repro.fleet.engine import (
    Cell,
    FleetEngine,
    FleetReport,
    RoundPlan,
    SpilloverEntry,
)
from repro.fleet.events import (
    CellDegraded,
    CellEvent,
    CellReconciled,
    ShardDegraded,
    ShardRestarted,
    SpilloverPlanned,
    SpilloverReleased,
)
from repro.fleet.partition import (
    HashPartitioner,
    Partitioner,
    RackAwarePartitioner,
    partition_state,
    resolve_partitioner,
    stable_cell,
)
from repro.fleet.replay import FleetReplayer, FleetReplayMetrics, FleetReplayStep
from repro.fleet.spillover import (
    DonorCapacity,
    MsSpec,
    NoSpillover,
    PackedSpillover,
    ResidualDemand,
    SpilloverAssignment,
    SpilloverPolicy,
    resolve_spillover,
)
from repro.fleet.summary import (
    CellSummary,
    fleet_availability,
    fleet_revenue,
    fleet_utilization,
    summarize_cell,
)

__all__ = [
    "CheckpointError",
    "load_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
    "FleetConfig",
    "SupervisorConfig",
    "default_cell_names",
    "Cell",
    "FleetEngine",
    "FleetReport",
    "RoundPlan",
    "SpilloverEntry",
    "CellDegraded",
    "CellEvent",
    "CellReconciled",
    "ShardDegraded",
    "ShardRestarted",
    "SpilloverPlanned",
    "SpilloverReleased",
    "HashPartitioner",
    "Partitioner",
    "RackAwarePartitioner",
    "partition_state",
    "resolve_partitioner",
    "stable_cell",
    "FleetReplayer",
    "FleetReplayMetrics",
    "FleetReplayStep",
    "DonorCapacity",
    "MsSpec",
    "NoSpillover",
    "PackedSpillover",
    "ResidualDemand",
    "SpilloverAssignment",
    "SpilloverPolicy",
    "resolve_spillover",
    "CellSummary",
    "fleet_availability",
    "fleet_revenue",
    "fleet_utilization",
    "summarize_cell",
]
