"""Fleet scenario replay: one timeline, many cells, optional worker shards.

:class:`FleetReplayer` drives a :class:`~repro.fleet.engine.FleetEngine`
through a *fleet scenario* — a mapping of cell name to
:class:`~repro.traces.schema.Trace` (see :func:`repro.traces.fleet_scenario`)
— and records one :class:`FleetReplayStep` per global timestamp.  Events at
the same timestamp across cells form one step (that is what makes
correlated cross-cell storms a single fleet round), followed by per-cell
reconciles and the fleet's spillover phase.

Three executors implement the per-cell work behind one protocol:

* serial — the fleet's own cells, in process;
* ``executor="thread"`` — a thread pool over the fleet's own cells: no
  serialization at all, for small fleets where process overhead dominates;
* ``executor="process"`` (default for ``workers`` > 1) — a persistent
  :class:`~repro.fleet.pool.ShardPool`: each worker process *owns* a
  round-robin shard of the cells for the whole replay.  States cross the
  process boundary once (at start); afterwards only trace events travel
  out and compact :class:`~repro.fleet.summary.CellSummary` objects travel
  back — wire-encoded (:mod:`repro.fleet.wire`) and **batched**: quiet
  stretches of the timeline ship K steps per round trip, with K auto-tuned
  from observed payload sizes (or pinned via ``batch_steps``).  When the
  parent's per-step fold finds a spillover round mid-batch, the shards
  rewind to that step before adjusting, so batching never changes output.

All federation decisions (spillover planning, release, events, metrics)
happen in the parent from the summaries, which every executor builds with
the same code over the same states — the replay JSONL is therefore
**byte-identical** for every (executor, worker count, codec, batch size)
combination, the property the fleet CI gate asserts.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field
from typing import Mapping

from repro import obs
from repro.traces.schema import Trace, TraceError

from repro.fleet.engine import adjust_cells, step_cells
from repro.fleet.events import CellEvent, CellReconciled
from repro.fleet.pool import ShardPool
from repro.fleet.summary import (
    CellSummary,
    clone_name,
    fleet_availability,
    fleet_revenue,
    fleet_utilization,
    is_clone,
)
from repro.api.events import FailureDetected, RecoveryDetected

#: Schema version of the fleet replay-metrics JSONL.
FLEET_REPLAY_METRICS_VERSION = 1

#: Auto-tuned batching aims at roughly this many reply bytes per round trip.
BATCH_TARGET_BYTES = 64 * 1024

#: Hard cap on auto-tuned batch size (steps per IPC round trip).
BATCH_MAX_STEPS = 32


@dataclass(frozen=True, slots=True)
class FleetReplayStep:
    """Metrics for one fleet step (all events at one timestamp + reaction)."""

    time: float
    events: tuple[str, ...]
    failed_nodes: int
    available_fraction: float
    availability: float
    revenue: float
    utilization: float
    degraded_cells: tuple[str, ...]
    spillovers_planned: int
    spillovers_released: int
    spillovers_active: int
    triggered: int
    actions: int

    def to_record(self) -> dict[str, object]:
        """The JSONL record for this step (no wall-clock fields: byte-stable)."""
        return {
            "record": "step",
            "time": self.time,
            "events": list(self.events),
            "failed_nodes": self.failed_nodes,
            "available_fraction": round(self.available_fraction, 9),
            "availability": round(self.availability, 9),
            "revenue": round(self.revenue, 9),
            "utilization": round(self.utilization, 9),
            "degraded_cells": list(self.degraded_cells),
            "spillovers_planned": self.spillovers_planned,
            "spillovers_released": self.spillovers_released,
            "spillovers_active": self.spillovers_active,
            "triggered": self.triggered,
            "actions": self.actions,
        }

    @classmethod
    def from_record(cls, record: Mapping) -> "FleetReplayStep":
        """Rebuild a step from :meth:`to_record` output.

        Floats come back as :meth:`to_record` rounded them, so
        ``from_record(r).to_record() == r`` — the round-trip the serve
        layer relies on when checkpointed step records are served again
        after a resume.
        """
        return cls(
            time=float(record["time"]),
            events=tuple(record["events"]),
            failed_nodes=int(record["failed_nodes"]),
            available_fraction=float(record["available_fraction"]),
            availability=float(record["availability"]),
            revenue=float(record["revenue"]),
            utilization=float(record["utilization"]),
            degraded_cells=tuple(record["degraded_cells"]),
            spillovers_planned=int(record["spillovers_planned"]),
            spillovers_released=int(record["spillovers_released"]),
            spillovers_active=int(record["spillovers_active"]),
            triggered=int(record["triggered"]),
            actions=int(record["actions"]),
        )


@dataclass
class FleetReplayMetrics:
    """The full per-step metric series of one fleet replay."""

    steps: list[FleetReplayStep] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def series(self, metric: str) -> list[tuple[float, float]]:
        return [(s.time, getattr(s, metric)) for s in self.steps]

    def min(self, metric: str) -> float:
        return min(getattr(s, metric) for s in self.steps)

    def final(self) -> FleetReplayStep:
        if not self.steps:
            raise ValueError("empty fleet replay: no steps recorded")
        return self.steps[-1]

    def to_jsonl(self) -> str:
        """Canonical JSONL: one header record plus one record per step."""
        header = {
            "record": "fleet-replay",
            "version": FLEET_REPLAY_METRICS_VERSION,
            "metadata": self.metadata,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(s.to_record(), sort_keys=True, separators=(",", ":"))
            for s in self.steps
        )
        return "\n".join(lines) + "\n"


# -- executors -----------------------------------------------------------------


class _LocalExecutor:
    """Serial executor: the fleet's own cells, in process.

    Thin delegation to the shared cell-ops helpers in
    :mod:`repro.fleet.engine` — the worker shards run the *same* helpers,
    so serial-vs-sharded byte-identity is structural, not a discipline.
    """

    batching = False

    def __init__(self, fleet, seed: int) -> None:
        self._fleet = fleet
        self._seed = seed

    def step(
        self, events_by_cell: Mapping[str, list], force: bool, with_events: bool
    ) -> list[CellSummary]:
        return step_cells(
            self._fleet.cells, events_by_cell, self._seed, force, with_events=with_events
        )

    def adjust(self, plan) -> tuple[dict[str, CellSummary], list]:
        updated, _reports, failed = self._fleet.apply_spillover(plan)
        return updated, failed

    def close(self) -> None:
        pass


class _ThreadExecutor:
    """Thread-pool executor over the fleet's own cells (opt-in).

    Each task owns a disjoint round-robin cell shard, so there is no shared
    mutable state between tasks; results fold back in fleet cell order.  No
    IPC, no codec, no state shipping — the executor for fleets whose cells
    are too small to amortize process overhead.  Summaries come from the
    same :func:`step_cells` / :func:`adjust_cells` helpers, so output is
    byte-identical to the serial and process paths.
    """

    batching = False

    def __init__(self, fleet, seed: int, workers: int) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._fleet = fleet
        self._seed = seed
        self._shards = [fleet.cells[w::workers] for w in range(workers)]
        self._shards = [shard for shard in self._shards if shard]
        self._pool = ThreadPoolExecutor(max_workers=len(self._shards))

    def step(
        self, events_by_cell: Mapping[str, list], force: bool, with_events: bool
    ) -> list[CellSummary]:
        futures = [
            self._pool.submit(
                step_cells,
                shard,
                {c.name: events_by_cell[c.name] for c in shard if c.name in events_by_cell},
                self._seed,
                force,
                with_events=with_events,
            )
            for shard in self._shards
        ]
        by_cell = {s.cell: s for future in futures for s in future.result()}
        return [by_cell[cell.name] for cell in self._fleet.cells]

    def adjust(self, plan) -> tuple[dict[str, CellSummary], list]:
        removes = [
            (entry.donor, clone_name(app, cell))
            for (cell, app), entry in plan.releases
        ]
        adds = list(plan.assignments)
        futures = [
            self._pool.submit(adjust_cells, shard, removes, adds)
            for shard in self._shards
        ]
        updated: dict[str, CellSummary] = {}
        failed: list = []
        for future in futures:
            summaries, _reports, shard_failed = future.result()
            updated.update(summaries)
            failed.extend(shard_failed)
        return updated, failed

    def close(self) -> None:
        self._pool.shutdown()


class _PoolExecutor:
    """Sharded executor over a persistent :class:`ShardPool` (see pool.py)."""

    batching = True

    def __init__(self, fleet, seed: int, workers: int, codec: str) -> None:
        pool_class = getattr(fleet, "_pool_class", None) or ShardPool
        self.pool = pool_class(
            fleet.cells,
            seed=seed,
            workers=workers,
            codec=codec,
            fault=getattr(fleet, "_shard_fault", None),
            supervisor=fleet.config.supervisor_config(),
            on_event=fleet.events.emit,
        )

    def step(
        self, events_by_cell: Mapping[str, list], force: bool, with_events: bool
    ) -> list[CellSummary]:
        return self.pool.step(events_by_cell, force, with_events)

    def step_batch(
        self, step_events: list, force: bool, with_events: bool
    ) -> list[list[CellSummary]]:
        return self.pool.step_batch(step_events, force, with_events)

    def rewind(self, keep_steps: int) -> None:
        self.pool.rewind(keep_steps)

    def adjust(self, plan) -> tuple[dict[str, CellSummary], list]:
        removes = [
            (entry.donor, clone_name(app, cell))
            for (cell, app), entry in plan.releases
        ]
        return self.pool.adjust(removes, list(plan.assignments))

    def close(self) -> None:
        self.pool.close()


# -- the replayer --------------------------------------------------------------


class FleetReplayer:
    """Replays a per-cell scenario mapping through a :class:`FleetEngine`.

    Parameters
    ----------
    fleet:
        The fleet to drive.  The replay mutates the fleet's cell states in
        serial and thread modes; with the process executor the states are
        shipped to the worker shards once and the parent copies go stale
        (the metrics are the product — rebuild the fleet to reuse it
        afterwards).
    seed:
        Seed for randomized ``capacity`` events, per cell.
    workers:
        Worker shard count; defaults to the fleet config's ``workers``.
        Metrics JSONL is byte-identical for every value.
    executor:
        ``"process"`` or ``"thread"``; defaults to the fleet config's
        ``executor``.  Ignored when ``workers`` is 1.
    codec:
        IPC encoding for the process executor (``"wire"``/``"pickle"``);
        defaults to the fleet config's ``codec``.
    batch_steps:
        Steps per IPC round trip for the process executor; defaults to the
        fleet config's ``batch_steps`` (``0`` = auto-tune from payload
        size, ``1`` = no batching, ``N`` = cap at N).
    force_each_step:
        Force a planning round in every cell on every step.

    After :meth:`run`, :attr:`phase_seconds` holds the wall-clock split of
    the replay — ``ship`` (encoding + sending IPC payloads), ``compute``
    (waiting on per-cell rounds) and ``fold`` (federation planning, event
    re-emission and metric building in the parent).  Serial and thread
    executors report zero ``ship``.
    """

    def __init__(
        self,
        fleet,
        *,
        seed: int = 0,
        workers: int | None = None,
        executor: str | None = None,
        codec: str | None = None,
        batch_steps: int | None = None,
        force_each_step: bool = False,
    ) -> None:
        self.fleet = fleet
        self.seed = seed
        self.workers = fleet.config.workers if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.executor = fleet.config.executor if executor is None else executor
        if self.executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        self.codec = fleet.config.codec if codec is None else codec
        self.batch_steps = (
            fleet.config.batch_steps if batch_steps is None else batch_steps
        )
        if self.batch_steps < 0:
            raise ValueError("batch_steps must be >= 0 (0 = auto-tune)")
        self.force_each_step = force_each_step
        self.phase_seconds = {"ship": 0.0, "compute": 0.0, "fold": 0.0}

    @property
    def events(self):
        """The fleet's event bus (summary-level events during replay)."""
        return self.fleet.events

    def _timeline(
        self, scenario: Mapping[str, Trace]
    ) -> list[tuple[float, dict[str, list]]]:
        """Merge per-cell traces into one [(time, {cell: events})] timeline."""
        names = set(self.fleet.cell_names)
        unknown = sorted(set(scenario) - names)
        if unknown:
            raise TraceError(
                f"scenario names unknown cells {unknown}; fleet has "
                f"{sorted(names)}"
            )
        merged: dict[float, dict[str, list]] = {}
        for cell in self.fleet.cell_names:
            trace = scenario.get(cell)
            if trace is None:
                continue
            trace.validate()
            for time_point, events in trace.steps():
                merged.setdefault(time_point, {})[cell] = list(events)
        return sorted(merged.items())

    def _make_executor(self):
        fleet = self.fleet
        workers = min(self.workers, len(fleet.cells))
        if workers > 1 and len(fleet.cells) > 1:
            if self.executor == "thread":
                return _ThreadExecutor(fleet, self.seed, workers)
            return _PoolExecutor(fleet, self.seed, workers, self.codec)
        return _LocalExecutor(fleet, self.seed)

    def _next_batch(self, current: int, adjusted: bool, last_step_bytes: float) -> int:
        """Batch size for the next IPC round trip.

        Resets to 1 whenever a spillover round interrupted the last batch
        (turbulent stretches plan federation every step — batching would
        just rewind), then ramps exponentially through quiet stretches up
        to the configured cap, or to an auto-tuned cap that keeps replies
        near :data:`BATCH_TARGET_BYTES`.
        """
        if adjusted:
            return 1
        if self.batch_steps == 1:
            return 1
        if self.batch_steps > 1:
            cap = self.batch_steps
        else:
            per_step = max(1.0, last_step_bytes)
            cap = max(1, min(BATCH_MAX_STEPS, int(BATCH_TARGET_BYTES / per_step)))
        return min(current * 2, cap)

    def run(self, scenario: Mapping[str, Trace]) -> FleetReplayMetrics:
        """Replay the scenario and return per-step fleet metrics."""
        fleet = self.fleet
        timeline = self._timeline(scenario)
        fleet.reset()
        executor = self._make_executor()
        bus = fleet.events
        # Observer fast path: decided once per run.  With no subscribers the
        # per-event payloads (failure/recovery node-name tuples) are neither
        # built nor shipped — subscribe before run(), not during it.
        with_events = bool(bus)
        metrics = FleetReplayMetrics(
            metadata={
                "driver": "fleet",
                "cells": list(fleet.cell_names),
                "policy": fleet.policy.name,
                "seed": self.seed,
                "traces": {
                    cell: dict(trace.metadata) for cell, trace in sorted(scenario.items())
                },
            }
        )
        executor_seconds = 0.0
        loop_started = _time.perf_counter()
        tracer = obs.tracer()
        batch = 1
        index = 0
        try:
            while index < len(timeline):
                size = batch if executor.batching else 1
                chunk = timeline[index : index + size]
                started = _time.perf_counter()
                if len(chunk) > 1:
                    summaries_list = executor.step_batch(
                        [events for _, events in chunk], self.force_each_step, with_events
                    )
                else:
                    summaries_list = [
                        executor.step(chunk[0][1], self.force_each_step, with_events)
                    ]
                executor_seconds += _time.perf_counter() - started
                step_bytes = getattr(
                    getattr(executor, "pool", None), "last_reply_bytes", 0
                ) / len(chunk)
                consumed = len(chunk)
                adjusted = False
                fold_span = tracer.span("fleet.fold", steps=len(chunk))
                fold_span.__enter__()
                try:
                    for position, ((time_point, events_by_cell), summaries) in enumerate(
                        zip(chunk, summaries_list)
                    ):
                        if bus:
                            for summary in summaries:
                                if summary.failed_nodes:
                                    bus.emit(
                                        CellEvent(
                                            summary.cell,
                                            FailureDetected(nodes=summary.failed_nodes),
                                        )
                                    )
                                if summary.recovered_nodes:
                                    bus.emit(
                                        CellEvent(
                                            summary.cell,
                                            RecoveryDetected(nodes=summary.recovered_nodes),
                                        )
                                    )
                                bus.emit(
                                    CellReconciled(
                                        cell=summary.cell,
                                        triggered=summary.triggered,
                                        actions=summary.actions,
                                    )
                                )
                        plan = fleet.plan_spillover(summaries)
                        updated: dict[str, CellSummary] = {}
                        failed: list = []
                        if plan:
                            started = _time.perf_counter()
                            if position + 1 < len(chunk):
                                # The batch speculated past a spillover round:
                                # roll the shards back to this step before
                                # adjusting, discarding the overrun.  Output is
                                # unchanged — only the speculation is.
                                executor.rewind(position + 1)
                                registry = obs.registry()
                                if registry.enabled:
                                    registry.counter("fleet.replay.rewinds").inc()
                            updated, failed = executor.adjust(plan)
                            executor_seconds += _time.perf_counter() - started
                            adjusted = True
                        fleet.commit_spillover(plan, failed)
                        final = {s.cell: s for s in summaries}
                        final.update(updated)
                        ordered = [final[name] for name in fleet.cell_names]
                        capacity = sum(s.capacity_cpu for s in ordered)
                        healthy = sum(s.healthy_cpu for s in ordered)
                        step = FleetReplayStep(
                            time=time_point,
                            events=tuple(
                                f"{cell}:{event.kind}"
                                for cell in fleet.cell_names
                                for event in events_by_cell.get(cell, ())
                            ),
                            failed_nodes=sum(s.failed_count for s in ordered),
                            available_fraction=(
                                healthy / capacity if capacity > 0 else 0.0
                            ),
                            availability=fleet_availability(ordered, fleet.spillovers),
                            revenue=fleet_revenue(ordered),
                            utilization=fleet_utilization(ordered),
                            degraded_cells=tuple(
                                s.cell
                                for s in ordered
                                if any(
                                    not is_clone(app)
                                    and (s.cell, app) not in fleet.spillovers
                                    for app, _ in s.missing_critical
                                )
                            ),
                            spillovers_planned=len(plan.assignments) - len(failed),
                            spillovers_released=len(plan.releases),
                            spillovers_active=len(fleet.spillovers),
                            triggered=sum(1 for s in summaries if s.triggered),
                            actions=sum(s.actions for s in summaries)
                            + sum(s.actions for s in updated.values()),
                        )
                        metrics.steps.append(step)
                        if adjusted:
                            consumed = position + 1
                            break
                finally:
                    fold_span.__exit__(None, None, None)
                index += consumed
                batch = self._next_batch(max(1, len(chunk)), adjusted, step_bytes)
        finally:
            executor.close()
        total = _time.perf_counter() - loop_started
        pool = getattr(executor, "pool", None)
        if pool is not None:
            ship = pool.phase_seconds["ship"]
            wait = pool.phase_seconds["wait"]
            self.phase_seconds = {
                "ship": ship,
                "compute": wait,
                "fold": (total - executor_seconds) + max(0.0, executor_seconds - ship - wait),
            }
        else:
            self.phase_seconds = {
                "ship": 0.0,
                "compute": executor_seconds,
                "fold": total - executor_seconds,
            }
        registry = obs.registry()
        if registry.enabled:
            registry.counter("fleet.replay.steps").inc(len(metrics.steps))
            # The same per-phase split phase_seconds reports, as registry
            # histograms — bench_fleet reads its phase columns from here.
            for phase, seconds in self.phase_seconds.items():
                registry.histogram(f"fleet.phase.{phase}_seconds").observe(seconds)
        return metrics
