"""Fleet scenario replay: one timeline, many cells, optional worker shards.

:class:`FleetReplayer` drives a :class:`~repro.fleet.engine.FleetEngine`
through a *fleet scenario* — a mapping of cell name to
:class:`~repro.traces.schema.Trace` (see :func:`repro.traces.fleet_scenario`)
— and records one :class:`FleetReplayStep` per global timestamp.  Events at
the same timestamp across cells form one step (that is what makes
correlated cross-cell storms a single fleet round), followed by per-cell
reconciles and the fleet's spillover phase.

Two executors implement the per-cell work behind one protocol:

* serial — the fleet's own cells, in process;
* ``workers=N`` — persistent worker processes, each *owning* a round-robin
  shard of the cells for the whole replay.  States cross the process
  boundary once (at start); afterwards only trace events travel out and
  compact :class:`~repro.fleet.summary.CellSummary` objects travel back,
  so per-step communication is O(churn), not O(cluster).

All federation decisions (spillover planning, release, events, metrics)
happen in the parent from the summaries, which both executors build with
the same code over the same states — the replay JSONL is therefore
**byte-identical** for every worker count, the property the fleet CI gate
asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.api.engine import PhoenixEngine
from repro.api.events import FailureDetected, RecoveryDetected
from repro.core.controller import StateBackend
from repro.traces.schema import Trace, TraceError

from repro.fleet.engine import Cell, adjust_cells, step_cells
from repro.fleet.events import CellEvent, CellReconciled
from repro.fleet.summary import (
    CellSummary,
    clone_name,
    fleet_availability,
    fleet_revenue,
    fleet_utilization,
    is_clone,
)

#: Schema version of the fleet replay-metrics JSONL.
FLEET_REPLAY_METRICS_VERSION = 1


@dataclass(frozen=True, slots=True)
class FleetReplayStep:
    """Metrics for one fleet step (all events at one timestamp + reaction)."""

    time: float
    events: tuple[str, ...]
    failed_nodes: int
    available_fraction: float
    availability: float
    revenue: float
    utilization: float
    degraded_cells: tuple[str, ...]
    spillovers_planned: int
    spillovers_released: int
    spillovers_active: int
    triggered: int
    actions: int

    def to_record(self) -> dict[str, object]:
        """The JSONL record for this step (no wall-clock fields: byte-stable)."""
        return {
            "record": "step",
            "time": self.time,
            "events": list(self.events),
            "failed_nodes": self.failed_nodes,
            "available_fraction": round(self.available_fraction, 9),
            "availability": round(self.availability, 9),
            "revenue": round(self.revenue, 9),
            "utilization": round(self.utilization, 9),
            "degraded_cells": list(self.degraded_cells),
            "spillovers_planned": self.spillovers_planned,
            "spillovers_released": self.spillovers_released,
            "spillovers_active": self.spillovers_active,
            "triggered": self.triggered,
            "actions": self.actions,
        }


@dataclass
class FleetReplayMetrics:
    """The full per-step metric series of one fleet replay."""

    steps: list[FleetReplayStep] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def series(self, metric: str) -> list[tuple[float, float]]:
        return [(s.time, getattr(s, metric)) for s in self.steps]

    def min(self, metric: str) -> float:
        return min(getattr(s, metric) for s in self.steps)

    def final(self) -> FleetReplayStep:
        if not self.steps:
            raise ValueError("empty fleet replay: no steps recorded")
        return self.steps[-1]

    def to_jsonl(self) -> str:
        """Canonical JSONL: one header record plus one record per step."""
        header = {
            "record": "fleet-replay",
            "version": FLEET_REPLAY_METRICS_VERSION,
            "metadata": self.metadata,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(s.to_record(), sort_keys=True, separators=(",", ":"))
            for s in self.steps
        )
        return "\n".join(lines) + "\n"


# -- executors -----------------------------------------------------------------


class _LocalExecutor:
    """Serial executor: the fleet's own cells, in process.

    Thin delegation to the shared cell-ops helpers in
    :mod:`repro.fleet.engine` — the worker shards run the *same* helpers,
    so serial-vs-sharded byte-identity is structural, not a discipline.
    """

    def __init__(self, fleet, seed: int) -> None:
        self._fleet = fleet
        self._seed = seed

    def step(self, events_by_cell: Mapping[str, list], force: bool) -> list[CellSummary]:
        return step_cells(self._fleet.cells, events_by_cell, self._seed, force)

    def adjust(self, plan) -> tuple[dict[str, CellSummary], list]:
        updated, _reports, failed = self._fleet.apply_spillover(plan)
        return updated, failed

    def close(self) -> None:
        pass


def _shard_main(conn, payload: list, seed: int) -> None:
    """Worker process: owns a shard of cells for the whole replay.

    Protocol (parent → worker): ``("step", events_by_cell, force)``,
    ``("adjust", removes, adds)``, ``("stop",)``.  Every reply is
    ``("ok", data)`` or ``("error", message)``.  The per-cell work is the
    shared :func:`repro.fleet.engine.step_cells` /
    :func:`repro.fleet.engine.adjust_cells` helpers — the exact code the
    serial executor runs, so summaries match byte for byte.
    """
    cells = []
    for name, state, config, known_failed, reference_revenue in payload:
        engine = PhoenixEngine(config)
        engine.known_failed = known_failed
        cells.append(Cell(name, engine, StateBackend(state), reference_revenue))
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            if command == "step":
                events_by_cell, force = message[1], message[2]
                conn.send(("ok", step_cells(cells, events_by_cell, seed, force)))
            elif command == "adjust":
                removes, adds = message[1], message[2]
                summaries, _reports, failed = adjust_cells(cells, removes, adds)
                conn.send(("ok", (summaries, failed)))
            else:
                conn.send(("error", f"unknown command {command!r}"))
    except Exception as exc:  # surface worker failures to the parent
        import traceback

        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessExecutor:
    """Sharded executor: persistent worker processes own the cell states."""

    def __init__(self, fleet, seed: int, workers: int) -> None:
        import multiprocessing as mp

        context = mp.get_context()
        self._fleet = fleet
        self._order = [cell.name for cell in fleet.cells]
        self._workers = []
        shards = [fleet.cells[w::workers] for w in range(workers)]
        for shard in shards:
            if not shard:
                continue
            parent_conn, child_conn = context.Pipe()
            payload = [
                (
                    cell.name,
                    cell.state,
                    cell.engine.config,
                    cell.engine.known_failed,
                    cell.reference_revenue,
                )
                for cell in shard
            ]
            process = context.Process(
                target=_shard_main, args=(child_conn, payload, seed), daemon=True
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn, [c.name for c in shard]))

    def _gather(self):
        replies = []
        for process, conn, _names in self._workers:
            status, data = conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"fleet shard worker failed: {data}")
            replies.append(data)
        return replies

    def step(self, events_by_cell: Mapping[str, list], force: bool) -> list[CellSummary]:
        for _process, conn, names in self._workers:
            shard_events = {n: events_by_cell[n] for n in names if n in events_by_cell}
            conn.send(("step", shard_events, force))
        by_cell: dict[str, CellSummary] = {}
        for reply in self._gather():
            for summary in reply:
                by_cell[summary.cell] = summary
        return [by_cell[name] for name in self._order]

    def adjust(self, plan) -> tuple[dict[str, CellSummary], list]:
        removes = [
            (entry.donor, clone_name(app, cell))
            for (cell, app), entry in plan.releases
        ]
        adds = list(plan.assignments)
        for _process, conn, _names in self._workers:
            conn.send(("adjust", removes, adds))
        updated: dict[str, CellSummary] = {}
        failed: list = []
        for reply in self._gather():
            summaries, shard_failed = reply
            updated.update(summaries)
            failed.extend(shard_failed)
        return updated, failed

    def close(self) -> None:
        for process, conn, _names in self._workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, _conn, _names in self._workers:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
        self._workers = []


# -- the replayer --------------------------------------------------------------


class FleetReplayer:
    """Replays a per-cell scenario mapping through a :class:`FleetEngine`.

    Parameters
    ----------
    fleet:
        The fleet to drive.  The replay mutates the fleet's cell states in
        serial mode; with ``workers`` > 1 the states are shipped to the
        worker shards once and the parent copies go stale (the metrics are
        the product — rebuild the fleet to reuse it afterwards).
    seed:
        Seed for randomized ``capacity`` events, per cell.
    workers:
        Worker shard count; defaults to the fleet config's ``workers``.
        Metrics JSONL is byte-identical for every value.
    force_each_step:
        Force a planning round in every cell on every step.
    """

    def __init__(
        self,
        fleet,
        *,
        seed: int = 0,
        workers: int | None = None,
        force_each_step: bool = False,
    ) -> None:
        self.fleet = fleet
        self.seed = seed
        self.workers = fleet.config.workers if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.force_each_step = force_each_step

    @property
    def events(self):
        """The fleet's event bus (summary-level events during replay)."""
        return self.fleet.events

    def _timeline(
        self, scenario: Mapping[str, Trace]
    ) -> list[tuple[float, dict[str, list]]]:
        """Merge per-cell traces into one [(time, {cell: events})] timeline."""
        names = set(self.fleet.cell_names)
        unknown = sorted(set(scenario) - names)
        if unknown:
            raise TraceError(
                f"scenario names unknown cells {unknown}; fleet has "
                f"{sorted(names)}"
            )
        merged: dict[float, dict[str, list]] = {}
        for cell in self.fleet.cell_names:
            trace = scenario.get(cell)
            if trace is None:
                continue
            trace.validate()
            for time_point, events in trace.steps():
                merged.setdefault(time_point, {})[cell] = list(events)
        return sorted(merged.items())

    def run(self, scenario: Mapping[str, Trace]) -> FleetReplayMetrics:
        """Replay the scenario and return per-step fleet metrics."""
        fleet = self.fleet
        timeline = self._timeline(scenario)
        fleet.reset()
        if self.workers > 1 and len(fleet.cells) > 1:
            executor = _ProcessExecutor(
                fleet, self.seed, min(self.workers, len(fleet.cells))
            )
        else:
            executor = _LocalExecutor(fleet, self.seed)
        bus = fleet.events
        metrics = FleetReplayMetrics(
            metadata={
                "driver": "fleet",
                "cells": list(fleet.cell_names),
                "policy": fleet.policy.name,
                "seed": self.seed,
                "traces": {
                    cell: dict(trace.metadata) for cell, trace in sorted(scenario.items())
                },
            }
        )
        try:
            for time_point, events_by_cell in timeline:
                summaries = executor.step(events_by_cell, self.force_each_step)
                if bus:
                    for summary in summaries:
                        if summary.failed_nodes:
                            bus.emit(
                                CellEvent(
                                    summary.cell,
                                    FailureDetected(nodes=summary.failed_nodes),
                                )
                            )
                        if summary.recovered_nodes:
                            bus.emit(
                                CellEvent(
                                    summary.cell,
                                    RecoveryDetected(nodes=summary.recovered_nodes),
                                )
                            )
                        bus.emit(
                            CellReconciled(
                                cell=summary.cell,
                                triggered=summary.triggered,
                                actions=summary.actions,
                            )
                        )
                plan = fleet.plan_spillover(summaries)
                updated: dict[str, CellSummary] = {}
                failed: list = []
                if plan:
                    updated, failed = executor.adjust(plan)
                fleet.commit_spillover(plan, failed)
                final = {s.cell: s for s in summaries}
                final.update(updated)
                ordered = [final[name] for name in fleet.cell_names]
                capacity = sum(s.capacity_cpu for s in ordered)
                healthy = sum(s.healthy_cpu for s in ordered)
                step = FleetReplayStep(
                    time=time_point,
                    events=tuple(
                        f"{cell}:{event.kind}"
                        for cell in fleet.cell_names
                        for event in events_by_cell.get(cell, ())
                    ),
                    failed_nodes=sum(s.failed_count for s in ordered),
                    available_fraction=(healthy / capacity if capacity > 0 else 0.0),
                    availability=fleet_availability(ordered, fleet.spillovers),
                    revenue=fleet_revenue(ordered),
                    utilization=fleet_utilization(ordered),
                    degraded_cells=tuple(
                        s.cell
                        for s in ordered
                        if any(
                            not is_clone(app) and (s.cell, app) not in fleet.spillovers
                            for app, _ in s.missing_critical
                        )
                    ),
                    spillovers_planned=len(plan.assignments) - len(failed),
                    spillovers_released=len(plan.releases),
                    spillovers_active=len(fleet.spillovers),
                    triggered=sum(1 for s in summaries if s.triggered),
                    actions=sum(s.actions for s in summaries)
                    + sum(s.actions for s in updated.values()),
                )
                metrics.steps.append(step)
        finally:
            executor.close()
        return metrics
