"""Per-cell round summaries: the compact, picklable fleet coordination unit.

Every fleet decision that spans cells — spillover planning, release,
degradation events, fleet-level metrics — is computed from
:class:`CellSummary` objects rather than from the cell states themselves.
That is what makes the parallel paths byte-identical to the serial ones: a
summary is a pure function of ``(cell state, reconcile outcome)``, it is
cheap to ship across a process boundary, and both the in-process and the
worker-process executors build it with the same code, so the coordinator
sees identical inputs (and therefore makes identical decisions) regardless
of where the per-cell rounds ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.adaptlab.metrics import cluster_revenue
from repro.cluster.state import ClusterState

#: Marker splitting a spillover clone's name into (source app, source cell).
SPILL_MARKER = "@spill:"


def clone_name(app: str, source_cell: str) -> str:
    """Name of the spillover clone of ``app`` from ``source_cell``."""
    return f"{app}{SPILL_MARKER}{source_cell}"


def is_clone(app_name: str) -> bool:
    return SPILL_MARKER in app_name


def clone_source(app_name: str) -> tuple[str, str]:
    """(source app, source cell) encoded in a clone name."""
    app, _, cell = app_name.partition(SPILL_MARKER)
    return app, cell


@dataclass(frozen=True, slots=True)
class CellSummary:
    """What the fleet coordinator needs to know about one cell's round.

    ``missing_critical`` lists, per application (clones included), the
    C1-tagged microservices not fully running in the cell — the residual
    demand signal.  Revenue is absolute (same units as the reference) so
    fleet aggregation can weight cells by their pre-failure revenue.
    """

    cell: str
    triggered: bool
    failed_nodes: tuple[str, ...]
    recovered_nodes: tuple[str, ...]
    actions: int
    failed_count: int
    capacity_cpu: float
    healthy_cpu: float
    healthy_mem: float
    used_cpu: float
    used_mem: float
    free_cpu: float
    free_mem: float
    revenue: float
    reference_revenue: float
    app_count: int
    missing_critical: tuple[tuple[str, tuple[str, ...]], ...]

    def missing_by_app(self) -> dict[str, tuple[str, ...]]:
        return dict(self.missing_critical)

    @property
    def degraded(self) -> bool:
        """True when any non-clone application misses critical capacity."""
        return any(not is_clone(app) for app, _ in self.missing_critical)

    def to_record(self) -> dict[str, object]:
        """JSON-ready snapshot of this summary (stable field set).

        The public serialization the serve layer and the CLI expose; field
        names and types are a compatibility surface (tested), so observers
        and dashboards can rely on them across versions.  Floats are
        rounded to 9 places like every other canonical record in the repo,
        so equal summaries serialize byte-identically.
        """
        return {
            "record": "cell-summary",
            "cell": self.cell,
            "triggered": self.triggered,
            "failed_nodes": list(self.failed_nodes),
            "recovered_nodes": list(self.recovered_nodes),
            "actions": self.actions,
            "failed_count": self.failed_count,
            "capacity_cpu": round(self.capacity_cpu, 9),
            "healthy_cpu": round(self.healthy_cpu, 9),
            "healthy_mem": round(self.healthy_mem, 9),
            "used_cpu": round(self.used_cpu, 9),
            "used_mem": round(self.used_mem, 9),
            "free_cpu": round(self.free_cpu, 9),
            "free_mem": round(self.free_mem, 9),
            "revenue": round(self.revenue, 9),
            "reference_revenue": round(self.reference_revenue, 9),
            "app_count": self.app_count,
            "missing_critical": [
                [app, list(names)] for app, names in self.missing_critical
            ],
            "degraded": self.degraded,
        }


def summarize_cell(
    cell: str,
    state: ClusterState,
    reference_revenue: float,
    *,
    triggered: bool = False,
    failed_nodes: Sequence[str] = (),
    recovered_nodes: Sequence[str] = (),
    actions: int = 0,
) -> CellSummary:
    """Build the :class:`CellSummary` for one cell after one round.

    Pure function of the state and the round outcome: iteration follows the
    state's registration order, so two processes summarizing equal states
    produce equal summaries (float accumulation order included).
    """
    active = state.active_microservices()
    missing: list[tuple[str, tuple[str, ...]]] = []
    app_count = 0
    for name, app in state.applications.items():
        if not is_clone(name):
            app_count += 1
        active_here = active[name]
        lacking = tuple(
            ms.name
            for ms in app
            if ms.criticality.level == 1 and ms.name not in active_here
        )
        if lacking:
            missing.append((name, lacking))
    capacity_all = state.total_capacity(healthy_only=False)
    capacity = state.total_capacity()
    used = state.total_used()
    return CellSummary(
        cell=cell,
        triggered=triggered,
        failed_nodes=tuple(failed_nodes),
        recovered_nodes=tuple(recovered_nodes),
        actions=actions,
        failed_count=state.failed_count,
        capacity_cpu=capacity_all.cpu,
        healthy_cpu=capacity.cpu,
        healthy_mem=capacity.memory,
        used_cpu=used.cpu,
        used_mem=used.memory,
        free_cpu=max(0.0, capacity.cpu - used.cpu),
        free_mem=max(0.0, capacity.memory - used.memory),
        revenue=cluster_revenue(state, active_by_app=active),
        reference_revenue=reference_revenue,
        app_count=app_count,
        missing_critical=tuple(missing),
    )


def fleet_availability(
    summaries: Sequence[CellSummary],
    spillovers: Mapping[tuple[str, str], object],
) -> float:
    """Fraction of fleet applications whose critical set runs *somewhere*.

    An application counts as available when its cell runs every C1
    microservice, or when an active spillover clone runs them in its donor
    cell.  ``spillovers`` maps ``(source cell, app)`` to a ledger entry with
    a ``donor`` attribute (see :class:`repro.fleet.engine.SpilloverEntry`).
    """
    by_cell = {summary.cell: summary for summary in summaries}
    total = 0
    available = 0
    for summary in summaries:
        missing = summary.missing_by_app()
        total += summary.app_count
        for name in missing:
            if is_clone(name):
                continue
            entry = spillovers.get((summary.cell, name))
            if entry is None:
                continue
            donor = by_cell.get(entry.donor)
            if donor is None:
                continue
            if clone_name(name, summary.cell) not in donor.missing_by_app():
                available += 1  # covered by the running clone
        degraded_here = sum(1 for name in missing if not is_clone(name))
        available += summary.app_count - degraded_here
    if total == 0:
        return 1.0
    return available / total


def fleet_revenue(summaries: Sequence[CellSummary]) -> float:
    """Fleet revenue normalized to the pre-failure fleet reference.

    Absolute revenues (spillover clones included — capacity a donor spends
    on a guest earns the guest's revenue) summed over cells, divided by the
    summed reference.  During the hand-back window after a source cell
    recovers, clone and source may briefly both earn; the release in the
    same round bounds the overlap to one step.
    """
    achieved = sum(summary.revenue for summary in summaries)
    baseline = sum(summary.reference_revenue for summary in summaries)
    if baseline <= 0:
        return 0.0
    return achieved / baseline


def fleet_utilization(summaries: Sequence[CellSummary]) -> float:
    """Used fraction of the fleet's healthy CPU capacity."""
    capacity = sum(summary.healthy_cpu for summary in summaries)
    if capacity <= 0:
        return 0.0
    return sum(summary.used_cpu for summary in summaries) / capacity
