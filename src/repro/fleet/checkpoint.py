"""Durable fleet checkpoints: freeze a :class:`FleetEngine`, thaw it later.

A checkpoint captures everything the fleet's behaviour depends on beyond
its construction parameters: per-cell cluster states, detector checkpoints
(``engine.known_failed``), reference revenues, the active spillover ledger,
the residual-change memory and the donor placement-failure memory.  It does
*not* capture construction parameters (cell count, policy, seeds) — those
belong to whoever rebuilds the fleet (:class:`~repro.fleet.config.FleetConfig`,
or the serve layer's recorded ``fleet_params``) — nor transient machinery
(worker pools, event subscribers, dirty-set trackers), which
:func:`restore_checkpoint` re-derives.

File format, versioned for forward evolution::

    b"FC" | version (1 byte) | wire frame of the payload dict

The payload rides the :mod:`repro.fleet.wire` codec, which embeds its own
magic, version and CRC-32 — so a truncated or bit-flipped checkpoint file
surfaces as :exc:`CheckpointError` at load time, never as a silently wrong
fleet.  Writes are atomic (temp file + ``os.replace``): a crash mid-save
leaves the previous checkpoint intact.

The serve layer pairs this with its write-ahead journal
(:mod:`repro.serve.wal`): checkpoint every K rounds, journal every round,
and recovery is load-checkpoint + replay-journal-tail (see
``docs/robustness.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.fleet.wire import WireError, dumps as wire_dumps, loads as wire_loads

#: File magic + format version (bump on incompatible payload changes).
CHECKPOINT_MAGIC = b"FC"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is damaged, incompatible, or mismatches the fleet."""


@dataclass
class Checkpoint:
    """One decoded checkpoint, ready for :func:`restore_checkpoint`.

    ``cells`` holds ``(name, state, known_failed, reference_revenue)``
    tuples in fleet order; ``extra`` is the caller's opaque dict (the serve
    layer records its round count and WAL position here).
    """

    version: int
    cells: list[tuple]
    ledger: dict
    last_residuals: dict
    spill_failures: dict
    extra: dict = field(default_factory=dict)

    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(entry[0] for entry in self.cells)


def save_checkpoint(fleet, path, *, extra: Mapping | None = None) -> None:
    """Write ``fleet``'s durable state to ``path``, atomically.

    Safe to call between rounds at any time; never call it mid-round (the
    serve layer's driver checkpoints only at round boundaries, where the
    fleet is quiescent by construction).
    """
    payload = {
        "cells": [
            (
                cell.name,
                cell.state,
                cell.engine.known_failed,
                cell.reference_revenue,
            )
            for cell in fleet.cells
        ],
        "ledger": dict(fleet._ledger),
        "last_residuals": dict(fleet._last_residuals),
        "spill_failures": dict(fleet._spill_failures),
        "extra": dict(extra or {}),
    }
    blob = CHECKPOINT_MAGIC + bytes([CHECKPOINT_VERSION]) + wire_dumps(payload)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path) -> Checkpoint:
    """Read and validate a checkpoint file; raises :exc:`CheckpointError`."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{path}: not a fleet checkpoint (bad magic)")
    if len(blob) < len(CHECKPOINT_MAGIC) + 1:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    version = blob[len(CHECKPOINT_MAGIC)]
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        payload = wire_loads(blob[len(CHECKPOINT_MAGIC) + 1 :])
    except WireError as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint body: {exc}") from exc
    try:
        return Checkpoint(
            version=version,
            cells=list(payload["cells"]),
            ledger=dict(payload["ledger"]),
            last_residuals=dict(payload["last_residuals"]),
            spill_failures=dict(payload["spill_failures"]),
            extra=dict(payload.get("extra", {})),
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"{path}: malformed checkpoint payload: {exc!r}") from exc


def restore_checkpoint(fleet, checkpoint: Checkpoint) -> None:
    """Reinstate ``checkpoint`` onto an identically *built* ``fleet``.

    The fleet must have the same cell names in the same order (build it
    from the same construction parameters); everything else — states,
    detector checkpoints, ledger, memories — is replaced wholesale.  Any
    worker pool is torn down (workers hold pre-checkpoint state) and the
    next parallel round re-ships the restored states.
    """
    if tuple(fleet.cell_names) != checkpoint.cell_names:
        raise CheckpointError(
            f"cell mismatch: fleet has {list(fleet.cell_names)}, "
            f"checkpoint has {list(checkpoint.cell_names)}"
        )
    fleet.close()
    for cell, (name, state, known_failed, reference) in zip(
        fleet.cells, checkpoint.cells
    ):
        cell.backend.state = state
        cell.engine.reset()
        cell.engine.known_failed = known_failed
        cell.reference_revenue = reference
    fleet._ledger = dict(checkpoint.ledger)
    fleet._last_residuals = dict(checkpoint.last_residuals)
    fleet._spill_failures = dict(checkpoint.spill_failures)
    # Re-derive the spillover spec cache from the restored states (clone
    # apps are skipped by _spec_for, exactly as at construction).
    fleet._app_specs = {}
    for cell in fleet.cells:
        for app_name in cell.state.applications:
            fleet._spec_for(cell.name, app_name)


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "load_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
]
