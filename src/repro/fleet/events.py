"""Fleet-level events: per-cell engine events re-tagged, plus federation news.

The fleet owns one :class:`~repro.api.events.EventBus`.  Per-cell engine
events (failure detection, plans, executed actions) are re-emitted on it
wrapped in :class:`CellEvent` — the ``cell=`` tag — in deterministic cell
order, identically whether the round ran serially or across worker
processes.  On top of that the federation layer emits its own vocabulary:

* :class:`CellDegraded` — a cell's surviving capacity cannot satisfy part of
  its critical set (new, uncovered residual demand appeared).
* :class:`SpilloverPlanned` — the fleet-level plan→pack round assigned a
  cell's residual critical demand to a donor cell.
* :class:`SpilloverReleased` — the source cell recovered (or the plan was
  superseded) and the donor's spillover clone was withdrawn.
* :class:`CellReconciled` — lightweight per-cell round summary used by the
  replay path, where full plan/schedule payloads are not shipped back from
  worker processes.
* :class:`ShardRestarted` — the shard supervisor replaced a dead, hung or
  corrupt worker process and replayed its in-flight command (results stay
  byte-identical to a fault-free round).
* :class:`ShardDegraded` — a shard exhausted its restart budget; its cells
  were re-homed (to surviving workers, or in-process when none survive)
  instead of failing the call.

All events subclass :class:`~repro.api.events.EngineEvent`, so one observer
type serves engines and fleets alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.events import EngineEvent


@dataclass(frozen=True)
class CellEvent(EngineEvent):
    """A per-cell engine event re-emitted on the fleet bus with its cell tag."""

    cell: str
    event: EngineEvent


@dataclass(frozen=True)
class CellReconciled(EngineEvent):
    """One cell finished its reconcile round (replay-path summary event)."""

    cell: str
    triggered: bool
    actions: int


@dataclass(frozen=True)
class CellDegraded(EngineEvent):
    """A cell cannot satisfy part of its critical set from surviving capacity.

    ``missing`` lists the affected ``(app, microservice)`` pairs — C1-tagged
    microservices not fully running in the cell and not yet covered by an
    active spillover.
    """

    cell: str
    missing: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class ShardRestarted(EngineEvent):
    """The supervisor restarted a shard worker after a fault.

    ``attempt`` counts consecutive failures for this shard (resets on any
    successful reply); ``reason`` is a short human-readable fault
    description (worker died / deadline exceeded / corrupt reply frame).
    """

    shard: int
    attempt: int
    cells: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class ShardDegraded(EngineEvent):
    """A shard crash-looped past its restart budget and was degraded.

    Its cells keep reconciling — first in-process in the parent, then
    re-homed to surviving workers at the next dispatch — so the fleet call
    completes instead of raising.  ``reason`` describes the final fault.
    """

    shard: int
    cells: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class SpilloverPlanned(EngineEvent):
    """Residual critical demand of one application migrates to a donor cell."""

    source_cell: str
    donor_cell: str
    app: str
    microservices: tuple[str, ...]
    cpu: float
    memory: float


@dataclass(frozen=True)
class SpilloverReleased(EngineEvent):
    """A spillover clone was withdrawn from its donor cell."""

    source_cell: str
    donor_cell: str
    app: str
    microservices: tuple[str, ...]
