"""Appendix G: which microservices serve the most requests?

The paper uses a linear program over call-graph templates to answer two
questions about each Alibaba application:

* given a budget of ``k`` activated microservices, what is the maximum
  fraction of user requests that can be fully served (Figure 17c)?
* what is the smallest set of microservices that serves a target fraction
  of requests (used by frequency-based criticality tagging)?

Both are set-cover-flavoured ILPs: a request template is served only when
*every* microservice it touches is activated.  The exact ILP (HiGHS via
``scipy.optimize.milp``) is provided alongside a weighted greedy heuristic;
the greedy version is the default for tagging because it is orders of
magnitude faster on the 3000-microservice applications and produces
near-identical coverage curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.adaptlab.dependency_graphs import CallGraph, TracedApplication


@dataclass(frozen=True, slots=True)
class CoverageSelection:
    """Result of a coverage optimization."""

    microservices: tuple[str, ...]
    covered_requests: float
    total_requests: float

    @property
    def coverage(self) -> float:
        if self.total_requests <= 0:
            return 0.0
        return self.covered_requests / self.total_requests


def _relevant_microservices(call_graphs: list[CallGraph]) -> list[str]:
    seen: set[str] = set()
    for cg in call_graphs:
        seen.update(cg.microservices)
    return sorted(seen)


# -- greedy -----------------------------------------------------------------------


def _greedy_order(app: TracedApplication) -> list[tuple[str, float]]:
    """Order templates by requests-per-newly-activated-microservice.

    Returns the cumulative (microservice, covered requests) activation trace,
    which both public functions slice.
    """
    remaining = list(app.call_graphs)
    active: set[str] = set()
    trace: list[tuple[str, float]] = []
    covered = 0.0
    while remaining:
        def gain(cg: CallGraph) -> float:
            new = len(set(cg.microservices) - active)
            return cg.requests / new if new else float("inf")

        best = max(remaining, key=gain)
        remaining.remove(best)
        new_ms = [ms for ms in best.microservices if ms not in active]
        covered += best.requests
        if not new_ms:
            if trace:
                trace[-1] = (trace[-1][0], covered)
            continue
        for index, ms in enumerate(new_ms):
            active.add(ms)
            # Only the last newly added microservice "completes" the template.
            trace.append((ms, covered if index == len(new_ms) - 1 else (trace[-1][1] if trace else 0.0)))
    return trace


def greedy_coverage_curve(app: TracedApplication) -> list[tuple[int, float]]:
    """(activated microservice count, fraction of requests served) curve."""
    trace = _greedy_order(app)
    total = app.total_requests
    curve = []
    for index, (_, covered) in enumerate(trace, start=1):
        curve.append((index, covered / total if total > 0 else 0.0))
    return curve


def minimal_microservices_for_coverage(
    app: TracedApplication,
    coverage: float,
    method: str = "greedy",
    time_limit: float = 30.0,
) -> CoverageSelection:
    """Smallest microservice set serving at least ``coverage`` of requests."""
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if method == "ilp":
        return _ilp_min_microservices(app, coverage, time_limit)
    trace = _greedy_order(app)
    total = app.total_requests
    target = coverage * total
    chosen: list[str] = []
    covered = 0.0
    for ms, cumulative in trace:
        chosen.append(ms)
        covered = cumulative
        if covered >= target - 1e-9:
            break
    return CoverageSelection(tuple(chosen), covered, total)


def max_coverage_with_budget(
    app: TracedApplication,
    budget: int,
    method: str = "greedy",
    time_limit: float = 30.0,
) -> CoverageSelection:
    """Maximum request coverage achievable with at most ``budget`` microservices."""
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if method == "ilp":
        return _ilp_max_coverage(app, budget, time_limit)
    trace = _greedy_order(app)
    total = app.total_requests
    chosen = [ms for ms, _ in trace[:budget]]
    covered = trace[budget - 1][1] if 0 < budget <= len(trace) else (trace[-1][1] if trace and budget > len(trace) else 0.0)
    return CoverageSelection(tuple(chosen), covered, total)


# -- exact ILP --------------------------------------------------------------------


def _ilp_setup(app: TracedApplication):
    ms_names = _relevant_microservices(app.call_graphs)
    ms_pos = {name: i for i, name in enumerate(ms_names)}
    n_ms = len(ms_names)
    n_cg = len(app.call_graphs)
    # Variables: [x_0..x_{M-1}, z_0..z_{T-1}]
    n_vars = n_ms + n_cg
    rows, lower, upper = [], [], []
    data, row_idx, col_idx = [], [], []

    def add_row(coeffs: dict[int, float], lo: float, hi: float) -> None:
        row = len(lower)
        for col, value in coeffs.items():
            data.append(value)
            row_idx.append(row)
            col_idx.append(col)
        lower.append(lo)
        upper.append(hi)

    for t, cg in enumerate(app.call_graphs):
        for ms in set(cg.microservices):
            # x_ms - z_t >= 0  (template served only if all its ms active)
            add_row({ms_pos[ms]: 1.0, n_ms + t: -1.0}, 0.0, np.inf)

    def finish(extra_rows):
        for coeffs, lo, hi in extra_rows:
            add_row(coeffs, lo, hi)
        matrix = sparse.csr_matrix((data, (row_idx, col_idx)), shape=(len(lower), n_vars))
        return LinearConstraint(matrix, np.asarray(lower), np.asarray(upper))

    return ms_names, ms_pos, n_ms, n_cg, n_vars, finish


def _ilp_max_coverage(app: TracedApplication, budget: int, time_limit: float) -> CoverageSelection:
    ms_names, ms_pos, n_ms, n_cg, n_vars, finish = _ilp_setup(app)
    constraint = finish([({i: 1.0 for i in range(n_ms)}, -np.inf, float(budget))])
    objective = np.zeros(n_vars)
    for t, cg in enumerate(app.call_graphs):
        objective[n_ms + t] = cg.requests
    result = milp(
        c=-objective,
        constraints=[constraint],
        integrality=np.ones(n_vars),
        bounds=Bounds(np.zeros(n_vars), np.ones(n_vars)),
        options={"time_limit": time_limit},
    )
    return _ilp_extract(app, ms_names, n_ms, result)


def _ilp_min_microservices(app: TracedApplication, coverage: float, time_limit: float) -> CoverageSelection:
    ms_names, ms_pos, n_ms, n_cg, n_vars, finish = _ilp_setup(app)
    target = coverage * app.total_requests
    coverage_row = ({n_ms + t: cg.requests for t, cg in enumerate(app.call_graphs)}, target, np.inf)
    constraint = finish([coverage_row])
    objective = np.zeros(n_vars)
    objective[:n_ms] = 1.0
    result = milp(
        c=objective,
        constraints=[constraint],
        integrality=np.ones(n_vars),
        bounds=Bounds(np.zeros(n_vars), np.ones(n_vars)),
        options={"time_limit": time_limit},
    )
    return _ilp_extract(app, ms_names, n_ms, result)


def _ilp_extract(app: TracedApplication, ms_names: list[str], n_ms: int, result) -> CoverageSelection:
    total = app.total_requests
    if result.x is None:
        return CoverageSelection((), 0.0, total)
    x = result.x
    chosen = tuple(name for i, name in enumerate(ms_names) if x[i] > 0.5)
    chosen_set = set(chosen)
    covered = sum(
        cg.requests for cg in app.call_graphs if set(cg.microservices) <= chosen_set
    )
    return CoverageSelection(chosen, covered, total)
