"""AdaptLab: the resilience benchmarking platform."""

from repro.adaptlab.analysis import (
    AppSummary,
    application_summaries,
    call_graph_size_cdf,
    coverage_curve,
    requests_vs_microservice_fraction,
    single_upstream_fraction,
)
from repro.adaptlab.baselines import (
    DefaultScheme,
    FairScheme,
    LPCostScheme,
    LPFairScheme,
    NoDegradationScheme,
    PhoenixCostScheme,
    PhoenixFairScheme,
    PhoenixScheme,
    PriorityScheme,
    ResilienceScheme,
    default_scheme_suite,
)
from repro.adaptlab.cluster_env import AdaptLabEnvironment, build_environment
from repro.adaptlab.dependency_graphs import (
    CallGraph,
    TracedApplication,
    generate_alibaba_applications,
)
from repro.adaptlab.failures import inject_capacity_failure, restore_capacity, set_capacity_fraction
from repro.adaptlab.frequency_lp import (
    CoverageSelection,
    greedy_coverage_curve,
    max_coverage_with_budget,
    minimal_microservices_for_coverage,
)
from repro.adaptlab.harness import (
    DEFAULT_FAILURE_LEVELS,
    SweepPoint,
    SweepResult,
    run_failure_sweep,
    summarize,
)
from repro.adaptlab.metrics import (
    FairnessDeviation,
    SchemeMetrics,
    cluster_utilization,
    critical_service_availability,
    evaluate_state,
    fairness_deviation,
    normalized_revenue,
    requests_served_fraction,
)
from repro.adaptlab.replay import (
    CapacityTrace,
    CapacityTracePoint,
    ReplayPoint,
    ReplayResult,
    replay_capacity_trace,
)
from repro.adaptlab.resources import ResourceModel, assign_resources
from repro.adaptlab.tagging import TaggingScheme, tag_application, tag_applications

__all__ = [
    "AppSummary",
    "application_summaries",
    "call_graph_size_cdf",
    "coverage_curve",
    "requests_vs_microservice_fraction",
    "single_upstream_fraction",
    "DefaultScheme",
    "FairScheme",
    "LPCostScheme",
    "LPFairScheme",
    "NoDegradationScheme",
    "PhoenixCostScheme",
    "PhoenixFairScheme",
    "PhoenixScheme",
    "PriorityScheme",
    "ResilienceScheme",
    "default_scheme_suite",
    "AdaptLabEnvironment",
    "build_environment",
    "CallGraph",
    "TracedApplication",
    "generate_alibaba_applications",
    "inject_capacity_failure",
    "restore_capacity",
    "set_capacity_fraction",
    "CoverageSelection",
    "greedy_coverage_curve",
    "max_coverage_with_budget",
    "minimal_microservices_for_coverage",
    "DEFAULT_FAILURE_LEVELS",
    "SweepPoint",
    "SweepResult",
    "run_failure_sweep",
    "summarize",
    "FairnessDeviation",
    "SchemeMetrics",
    "cluster_utilization",
    "critical_service_availability",
    "evaluate_state",
    "fairness_deviation",
    "normalized_revenue",
    "requests_served_fraction",
    "CapacityTrace",
    "CapacityTracePoint",
    "ReplayPoint",
    "ReplayResult",
    "replay_capacity_trace",
    "ResourceModel",
    "assign_resources",
    "TaggingScheme",
    "tag_application",
    "tag_applications",
]
