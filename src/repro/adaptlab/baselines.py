"""Resilience schemes evaluated by AdaptLab (§6).

Cooperative schemes (the paper's contribution):

* :class:`PhoenixCostScheme` — Phoenix planner + scheduler, revenue objective.
* :class:`PhoenixFairScheme` — Phoenix planner + scheduler, fairness objective.
* :class:`LPCostScheme` / :class:`LPFairScheme` — the exact ILP formulations.

Non-cooperative baselines:

* :class:`FairScheme` — operator-enforced fair-share redistribution that is
  blind to criticality tags.
* :class:`PriorityScheme` — applications expose criticality tags but the
  operator enforces no per-application quota, so tag-rich applications hog
  capacity.
* :class:`DefaultScheme` — vanilla Kubernetes behaviour: reschedule evicted
  pods with a spreading policy, no criticality awareness, no deletions of
  running pods, no packing efficiency.
* :class:`NoDegradationScheme` — applications that cannot adapt at all (the
  "×" marker of Figure 5): unless the *whole* application fits, it is down.

Every scheme consumes a post-failure :class:`ClusterState` and returns a new
state (the enacted target) plus the planning time it took to compute it.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Mapping

import networkx as nx
import numpy as np

from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.lp import LPCost, LPFair
from repro.core.objectives import FairnessObjective, OperatorObjective, RevenueObjective
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.planner import GlobalRanker, PhoenixPlanner, PriorityEstimator
from repro.core.scheduler import PhoenixScheduler, apply_schedule


class ResilienceScheme(ABC):
    """A degradation/recovery policy responding to a capacity crunch."""

    name: str = "scheme"

    @abstractmethod
    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        """Return (new cluster state, planning seconds) for a failed state.

        ``state`` is not mutated.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# -- Phoenix --------------------------------------------------------------------


class PhoenixScheme(ResilienceScheme):
    """Phoenix planner + scheduler under a configurable operator objective."""

    def __init__(self, objective: OperatorObjective, name: str | None = None) -> None:
        self.planner = PhoenixPlanner(objective)
        self.scheduler = PhoenixScheduler()
        self.name = name or f"phoenix-{objective.name}"

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        plan = self.planner.plan(state)
        schedule = self.scheduler.schedule(state, plan)
        elapsed = time.perf_counter() - started
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        return new_state, elapsed


class PhoenixCostScheme(PhoenixScheme):
    """PhoenixCost: revenue-maximizing operator objective."""

    def __init__(self) -> None:
        super().__init__(RevenueObjective(), name="phoenix-cost")


class PhoenixFairScheme(PhoenixScheme):
    """PhoenixFair: water-filling max-min fairness operator objective."""

    def __init__(self) -> None:
        super().__init__(FairnessObjective(), name="phoenix-fair")


# -- exact LP baselines ------------------------------------------------------------


class LPCostScheme(ResilienceScheme):
    """Exact revenue-maximizing ILP (does not scale beyond ~1000 nodes)."""

    name = "lp-cost"

    def __init__(self, time_limit: float = 60.0) -> None:
        self._lp = LPCost(time_limit=time_limit)

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        solution = self._lp.solve(state)
        schedule = solution.to_schedule_plan(state)
        elapsed = time.perf_counter() - started
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        return new_state, elapsed


class LPFairScheme(LPCostScheme):
    """Exact fairness ILP (Appendix C)."""

    name = "lp-fair"

    def __init__(self, time_limit: float = 60.0) -> None:
        super().__init__(time_limit)
        self._lp = LPFair(time_limit=time_limit)


# -- non-cooperative baselines --------------------------------------------------------


class _CriticalityBlindEstimator(PriorityEstimator):
    """Orders microservices by dependency topology only (no criticality)."""

    def rank(self, app: Application) -> list[str]:
        if not app.has_dependency_graph:
            return sorted(app.microservices)
        graph = app.dependency_graph
        try:
            order = [n for n in nx.lexicographical_topological_sort(graph)]
        except nx.NetworkXUnfeasible:  # cycles: fall back to name order
            order = sorted(app.microservices)
        missing = [n for n in sorted(app.microservices) if n not in order]
        return order + missing


class FairScheme(ResilienceScheme):
    """Fair-share redistribution without criticality awareness."""

    name = "fair"

    def __init__(self) -> None:
        self._estimator = _CriticalityBlindEstimator()
        self._scheduler = PhoenixScheduler()

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        objective = FairnessObjective()
        ranker = GlobalRanker(objective)
        app_rank = {name: self._estimator.rank(app) for name, app in state.applications.items()}
        plan = ranker.rank(state.applications, app_rank, state.total_capacity().cpu)
        schedule = self._scheduler.schedule(state, plan)
        elapsed = time.perf_counter() - started
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        return new_state, elapsed


class PriorityScheme(ResilienceScheme):
    """Criticality tags without operator-level inter-application policy.

    Each application restores its own containers in criticality order, but
    the operator applies no per-application quota and no inter-application
    coordination: applications are simply served one after another, and —
    as the paper observes — "a few applications with many high-criticality
    microservices use most of the resources", starving the applications that
    come later in the queue.  Applications with larger high-criticality
    footprints reclaim capacity first (they generate the most restart
    traffic), which is what makes the behaviour pathological.
    """

    name = "priority"

    def __init__(self) -> None:
        self._estimator = PriorityEstimator()
        self._scheduler = PhoenixScheduler()

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        capacity = state.total_capacity().cpu

        def c1_demand(app: Application) -> float:
            return sum(
                ms.total_resources.cpu for ms in app if ms.criticality.level == 1
            )

        app_order = sorted(
            state.applications.values(), key=lambda a: (-c1_demand(a), a.name)
        )
        ranked: list[RankedMicroservice] = []
        activated: list[RankedMicroservice] = []
        remaining = capacity
        for app in app_order:
            blocked = False
            for ms_name in self._estimator.rank(app):
                ms = app.get(ms_name)
                demand = ms.total_resources.cpu
                entry = RankedMicroservice(app.name, ms_name, demand)
                ranked.append(entry)
                if not blocked and demand <= remaining + 1e-9:
                    activated.append(entry)
                    remaining -= demand
                else:
                    blocked = True
        plan = ActivationPlan(
            ranked=ranked, activated=activated, capacity=capacity, objective=self.name
        )
        schedule = self._scheduler.schedule(state, plan)
        elapsed = time.perf_counter() - started
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        return new_state, elapsed


class DefaultScheme(ResilienceScheme):
    """Vanilla cluster-scheduler behaviour (the Kubernetes "Default" baseline).

    Pods on healthy nodes keep running; pods lost with failed nodes are
    rescheduled in name order using a least-allocated (spreading) policy.
    Nothing is ever turned off to make room, so under a capacity crunch the
    reschedule queue simply stalls — exactly the behaviour Phoenix improves
    on.
    """

    name = "default"

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        new_state = state.copy()
        evicted = new_state.evict_from_failed_nodes()
        evicted.sort(key=lambda r: (r.app, r.microservice, r.replica))
        # Vectorized least-allocated scan: one row per healthy node (in node
        # registration order, matching the per-replica scan it replaces);
        # the chosen row is refreshed from the state after each assignment so
        # selections are identical to recomputing free capacity every time.
        names = [node.name for node in new_state.healthy_nodes()]
        free_cpu = np.empty(len(names))
        free_mem = np.empty(len(names))
        for i, name in enumerate(names):
            free = new_state.free_on(name)
            free_cpu[i] = free.cpu
            free_mem[i] = free.memory
        for replica in evicted:
            demand = new_state.demand_of(replica.app, replica.microservice)
            fits = (demand.cpu <= free_cpu + 1e-9) & (demand.memory <= free_mem + 1e-9)
            if not fits.any():
                continue
            # np.argmax returns the first maximum, matching the strict
            # "free.cpu > best" scan order over healthy nodes.
            index = int(np.argmax(np.where(fits, free_cpu, -np.inf)))
            target = names[index]
            new_state.assign(replica, target)
            free = new_state.free_on(target)
            free_cpu[index] = free.cpu
            free_mem[index] = free.memory
        elapsed = time.perf_counter() - started
        return new_state, elapsed


class NoDegradationScheme(ResilienceScheme):
    """Applications that cannot degrade: all-or-nothing availability.

    After Default-style rescheduling, any application that is not fully
    running is considered down and its remaining replicas are withdrawn —
    modelling applications that cannot adapt to a resource crunch (the "×"
    marker in Figure 5).
    """

    name = "no-degradation"

    def __init__(self) -> None:
        self._default = DefaultScheme()

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        new_state, elapsed = self._default.respond(state)
        started = time.perf_counter()
        active = new_state.active_microservices()
        for name, app in new_state.applications.items():
            fully_up = all(ms.name in active[name] for ms in app)
            if fully_up:
                continue
            for ms in app:
                for replica in new_state.iter_replicas(name, ms.name):
                    if new_state.node_of(replica) is not None:
                        new_state.unassign(replica)
        return new_state, elapsed + (time.perf_counter() - started)


def default_scheme_suite() -> list[ResilienceScheme]:
    """The five schemes shown in Figures 7 and 10-16."""
    return [
        PhoenixCostScheme(),
        PhoenixFairScheme(),
        PriorityScheme(),
        FairScheme(),
        DefaultScheme(),
    ]
