"""Resilience schemes evaluated by AdaptLab (§6).

Cooperative schemes (the paper's contribution):

* :class:`PhoenixCostScheme` — Phoenix engine, revenue objective.
* :class:`PhoenixFairScheme` — Phoenix engine, fairness objective.
* :class:`LPCostScheme` / :class:`LPFairScheme` — the exact ILP formulations.

Non-cooperative baselines:

* :class:`FairScheme` — operator-enforced fair-share redistribution that is
  blind to criticality tags.
* :class:`PriorityScheme` — applications expose criticality tags but the
  operator enforces no per-application quota, so tag-rich applications hog
  capacity.
* :class:`DefaultScheme` — vanilla Kubernetes behaviour: reschedule evicted
  pods with a spreading policy, no criticality awareness, no deletions of
  running pods, no packing efficiency.
* :class:`NoDegradationScheme` — applications that cannot adapt at all (the
  "×" marker of Figure 5): unless the *whole* application fits, it is down.

Every scheme consumes a post-failure :class:`ClusterState` and returns a new
state (the enacted target) plus the planning time it took to compute it.

Since the engine redesign the planner-driven schemes are
:class:`~repro.api.adapters.SchemeAdapter` wrappers around a
:class:`~repro.api.engine.PhoenixEngine`: the Phoenix schemes use the stock
pipeline, the LP schemes use an :class:`~repro.api.engine.LPPipeline`, and
the Fair/Priority baselines plug their policy in as a custom
:class:`~repro.api.stages.Ranker` — same engine, different stage.
"""

from __future__ import annotations

import time
import warnings
from abc import ABC, abstractmethod

import networkx as nx
import numpy as np

from repro.api.adapters import SchemeAdapter
from repro.api.config import EngineConfig
from repro.api.engine import LPPipeline, PhoenixEngine
from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.lp import LPCost, LPFair
from repro.core.objectives import FairnessObjective, OperatorObjective, RevenueObjective
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.planner import GlobalRanker, PriorityEstimator


class ResilienceScheme(ABC):
    """A degradation/recovery policy responding to a capacity crunch."""

    name: str = "scheme"

    @abstractmethod
    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        """Return (new cluster state, planning seconds) for a failed state.

        ``state`` is not mutated.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# -- Phoenix --------------------------------------------------------------------


class PhoenixScheme(SchemeAdapter, ResilienceScheme):
    """Phoenix engine under a configurable operator objective.

    New code passes a fully configured engine (``PhoenixScheme(engine=...)``
    or plain :class:`~repro.api.adapters.SchemeAdapter`); the pre-engine
    ``PhoenixScheme(objective)`` form keeps working as a deprecation shim.
    """

    def __init__(
        self,
        objective: OperatorObjective | None = None,
        name: str | None = None,
        *,
        engine: PhoenixEngine | None = None,
    ) -> None:
        if (engine is None) == (objective is None):
            raise TypeError("pass exactly one of `objective` (deprecated) or `engine`")
        if engine is None:
            warnings.warn(
                "PhoenixScheme(objective) is deprecated; build an engine with "
                "repro.api.engine(objective) and wrap it: PhoenixScheme(engine=...) "
                "or SchemeAdapter(engine)",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = PhoenixEngine(EngineConfig(objective=objective))
        super().__init__(engine, name=name)

    # Legacy component views (the pre-engine scheme exposed both).
    @property
    def planner(self):
        """The engine's ranking stage (a ``PhoenixPlanner``)."""
        return self.engine.ranker

    @property
    def scheduler(self):
        """Schedule-capable view of the engine (``schedule(state, plan)``)."""
        return self.engine


class PhoenixCostScheme(PhoenixScheme):
    """PhoenixCost: revenue-maximizing operator objective."""

    def __init__(self) -> None:
        super().__init__(
            engine=PhoenixEngine(EngineConfig(objective=RevenueObjective())),
            name="phoenix-cost",
        )


class PhoenixFairScheme(PhoenixScheme):
    """PhoenixFair: water-filling max-min fairness operator objective."""

    def __init__(self) -> None:
        super().__init__(
            engine=PhoenixEngine(EngineConfig(objective=FairnessObjective())),
            name="phoenix-fair",
        )


# -- exact LP baselines ------------------------------------------------------------


class LPCostScheme(SchemeAdapter, ResilienceScheme):
    """Exact revenue-maximizing ILP (does not scale beyond ~1000 nodes)."""

    name = "lp-cost"

    def __init__(self, time_limit: float = 60.0) -> None:
        super().__init__(
            PhoenixEngine.from_pipeline(
                LPPipeline(LPCost(time_limit=time_limit), name="lp-cost")
            )
        )

    @property
    def _lp(self):
        """Legacy view of the underlying solver."""
        return self.engine.pipeline.solver


class LPFairScheme(LPCostScheme):
    """Exact fairness ILP (Appendix C)."""

    name = "lp-fair"

    def __init__(self, time_limit: float = 60.0) -> None:
        SchemeAdapter.__init__(
            self,
            PhoenixEngine.from_pipeline(
                LPPipeline(LPFair(time_limit=time_limit), name="lp-fair")
            ),
        )


# -- non-cooperative baselines --------------------------------------------------------


class _CriticalityBlindEstimator(PriorityEstimator):
    """Orders microservices by dependency topology only (no criticality)."""

    def rank(self, app: Application) -> list[str]:
        if not app.has_dependency_graph:
            return sorted(app.microservices)
        graph = app.dependency_graph
        try:
            order = [n for n in nx.lexicographical_topological_sort(graph)]
        except nx.NetworkXUnfeasible:  # cycles: fall back to name order
            order = sorted(app.microservices)
        missing = [n for n in sorted(app.microservices) if n not in order]
        return order + missing


class _CriticalityBlindRanker:
    """Fair-share :class:`~repro.api.stages.Ranker`, blind to criticality.

    A fresh fairness objective is prepared per plan (matching the pre-engine
    scheme, which rebuilt its objective every ``respond`` call).
    """

    def __init__(self) -> None:
        self._estimator = _CriticalityBlindEstimator()

    def plan(self, state: ClusterState) -> ActivationPlan:
        ranker = GlobalRanker(FairnessObjective())
        app_rank = {
            name: self._estimator.rank(app) for name, app in state.applications.items()
        }
        return ranker.rank(state.applications, app_rank, state.total_capacity().cpu)


class FairScheme(SchemeAdapter, ResilienceScheme):
    """Fair-share redistribution without criticality awareness."""

    name = "fair"

    def __init__(self) -> None:
        super().__init__(
            PhoenixEngine(
                EngineConfig(objective="fairness"), ranker=_CriticalityBlindRanker()
            ),
            name="fair",
        )


class _PriorityQueueRanker:
    """Per-application criticality order with no inter-application policy.

    Each application restores its own containers in criticality order, but
    the operator applies no per-application quota and no inter-application
    coordination: applications are simply served one after another, and —
    as the paper observes — "a few applications with many high-criticality
    microservices use most of the resources", starving the applications that
    come later in the queue.  Applications with larger high-criticality
    footprints reclaim capacity first (they generate the most restart
    traffic), which is what makes the behaviour pathological.
    """

    def __init__(self) -> None:
        self._estimator = PriorityEstimator()

    def plan(self, state: ClusterState) -> ActivationPlan:
        capacity = state.total_capacity().cpu

        def c1_demand(app: Application) -> float:
            return sum(
                ms.total_resources.cpu for ms in app if ms.criticality.level == 1
            )

        app_order = sorted(
            state.applications.values(), key=lambda a: (-c1_demand(a), a.name)
        )
        ranked: list[RankedMicroservice] = []
        activated: list[RankedMicroservice] = []
        remaining = capacity
        for app in app_order:
            blocked = False
            for ms_name in self._estimator.rank(app):
                ms = app.get(ms_name)
                demand = ms.total_resources.cpu
                entry = RankedMicroservice(app.name, ms_name, demand)
                ranked.append(entry)
                if not blocked and demand <= remaining + 1e-9:
                    activated.append(entry)
                    remaining -= demand
                else:
                    blocked = True
        return ActivationPlan(
            ranked=ranked, activated=activated, capacity=capacity, objective="priority"
        )


class PriorityScheme(SchemeAdapter, ResilienceScheme):
    """Criticality tags without operator-level inter-application policy."""

    name = "priority"

    def __init__(self) -> None:
        super().__init__(
            PhoenixEngine(ranker=_PriorityQueueRanker()), name="priority"
        )


class DefaultScheme(ResilienceScheme):
    """Vanilla cluster-scheduler behaviour (the Kubernetes "Default" baseline).

    Pods on healthy nodes keep running; pods lost with failed nodes are
    rescheduled in name order using a least-allocated (spreading) policy.
    Nothing is ever turned off to make room, so under a capacity crunch the
    reschedule queue simply stalls — exactly the behaviour Phoenix improves
    on.  (Not engine-shaped: there is no planning pipeline to speak of.)
    """

    name = "default"

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        started = time.perf_counter()
        new_state = state.copy()
        evicted = new_state.evict_from_failed_nodes()
        evicted.sort(key=lambda r: (r.app, r.microservice, r.replica))
        # Vectorized least-allocated scan: one row per healthy node (in node
        # registration order, matching the per-replica scan it replaces);
        # the chosen row is refreshed from the state after each assignment so
        # selections are identical to recomputing free capacity every time.
        names = [node.name for node in new_state.healthy_nodes()]
        free_cpu = np.empty(len(names))
        free_mem = np.empty(len(names))
        for i, name in enumerate(names):
            free = new_state.free_on(name)
            free_cpu[i] = free.cpu
            free_mem[i] = free.memory
        for replica in evicted:
            demand = new_state.demand_of(replica.app, replica.microservice)
            fits = (demand.cpu <= free_cpu + 1e-9) & (demand.memory <= free_mem + 1e-9)
            if not fits.any():
                continue
            # np.argmax returns the first maximum, matching the strict
            # "free.cpu > best" scan order over healthy nodes.
            index = int(np.argmax(np.where(fits, free_cpu, -np.inf)))
            target = names[index]
            new_state.assign(replica, target)
            free = new_state.free_on(target)
            free_cpu[index] = free.cpu
            free_mem[index] = free.memory
        elapsed = time.perf_counter() - started
        return new_state, elapsed


class NoDegradationScheme(ResilienceScheme):
    """Applications that cannot degrade: all-or-nothing availability.

    After Default-style rescheduling, any application that is not fully
    running is considered down and its remaining replicas are withdrawn —
    modelling applications that cannot adapt to a resource crunch (the "×"
    marker in Figure 5).
    """

    name = "no-degradation"

    def __init__(self) -> None:
        self._default = DefaultScheme()

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        new_state, elapsed = self._default.respond(state)
        started = time.perf_counter()
        active = new_state.active_microservices()
        for name, app in new_state.applications.items():
            fully_up = all(ms.name in active[name] for ms in app)
            if fully_up:
                continue
            for ms in app:
                for replica in new_state.iter_replicas(name, ms.name):
                    if new_state.node_of(replica) is not None:
                        new_state.unassign(replica)
        return new_state, elapsed + (time.perf_counter() - started)


def default_scheme_suite() -> list[ResilienceScheme]:
    """The five schemes shown in Figures 7 and 10-16."""
    return [
        PhoenixCostScheme(),
        PhoenixFairScheme(),
        PriorityScheme(),
        FairScheme(),
        DefaultScheme(),
    ]
