"""Experiment harness: failure sweeps across schemes (Figures 7 and 10-16).

The harness copies the environment's pre-failure state, injects a failure of
the requested magnitude, lets each scheme respond, and records the metric
bundle.  Results are plain dataclasses that benches and tests can assert on
and print as the rows/series of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Sequence

from repro.adaptlab.baselines import ResilienceScheme, default_scheme_suite
from repro.adaptlab.cluster_env import AdaptLabEnvironment
from repro.adaptlab.failures import inject_capacity_failure
from repro.adaptlab.metrics import SchemeMetrics, evaluate_state

#: The failure levels (fraction of capacity lost) used on the x-axis of Fig 7.
DEFAULT_FAILURE_LEVELS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class SweepPoint:
    """Averaged metrics for one (scheme, failure level) combination."""

    scheme: str
    failure_level: float
    availability: float
    revenue: float
    fairness_positive: float
    fairness_negative: float
    utilization: float
    requests_served: float | None
    planning_seconds: float
    trials: int

    @property
    def fairness_total(self) -> float:
        return self.fairness_positive + self.fairness_negative


@dataclass
class SweepResult:
    """All points of one sweep, indexable by scheme and failure level."""

    points: list[SweepPoint] = field(default_factory=list)

    def series(self, scheme: str, metric: str) -> list[tuple[float, float]]:
        """(failure level, metric value) series for one scheme."""
        series = []
        for point in sorted(self.points, key=lambda p: p.failure_level):
            if point.scheme != scheme:
                continue
            value = getattr(point, metric)
            series.append((point.failure_level, value))
        return series

    def point(self, scheme: str, failure_level: float) -> SweepPoint:
        for candidate in self.points:
            if candidate.scheme == scheme and abs(candidate.failure_level - failure_level) < 1e-9:
                return candidate
        raise KeyError((scheme, failure_level))

    def schemes(self) -> list[str]:
        return sorted({p.scheme for p in self.points})

    def to_rows(self) -> list[dict[str, object]]:
        """Plain dict rows (what the benches print)."""
        return [vars(p) | {"fairness_total": p.fairness_total} for p in self.points]


def _aggregate(
    scheme: str,
    failure_level: float,
    metrics: Sequence[SchemeMetrics],
) -> SweepPoint:
    return SweepPoint(
        scheme=scheme,
        failure_level=failure_level,
        availability=mean(m.critical_service_availability for m in metrics),
        revenue=mean(m.normalized_revenue for m in metrics),
        fairness_positive=mean(m.fairness.positive for m in metrics),
        fairness_negative=mean(m.fairness.negative for m in metrics),
        utilization=mean(m.utilization for m in metrics),
        requests_served=(
            mean(m.requests_served_fraction for m in metrics)
            if metrics and metrics[0].requests_served_fraction is not None
            else None
        ),
        planning_seconds=mean(m.planning_seconds for m in metrics),
        trials=len(metrics),
    )


def run_failure_sweep(
    env: AdaptLabEnvironment,
    schemes: Iterable[ResilienceScheme] | None = None,
    failure_levels: Sequence[float] = DEFAULT_FAILURE_LEVELS,
    trials: int = 1,
    seed: int = 0,
    include_requests_served: bool = False,
) -> SweepResult:
    """Run the full failure sweep of Figure 7 (and Figures 10-16).

    Parameters
    ----------
    env:
        The AdaptLab environment to evaluate on.
    schemes:
        Resilience schemes; defaults to the paper's five-scheme suite.
    failure_levels:
        Fractions of cluster capacity to fail.
    trials:
        Trials per (scheme, level) pair; failures differ by trial seed and
        results are averaged (the paper averages five trials).
    include_requests_served:
        Also compute the requests-served fraction (slower on big clusters).
    """
    scheme_list = list(schemes) if schemes is not None else default_scheme_suite()
    reference = env.fresh_state()
    traced = env.traced if include_requests_served else None
    result = SweepResult()
    for level in failure_levels:
        for scheme in scheme_list:
            collected: list[SchemeMetrics] = []
            for trial in range(trials):
                state = env.fresh_state()
                inject_capacity_failure(state, level, seed=seed + trial * 1009 + int(level * 100))
                new_state, planning_seconds = scheme.respond(state)
                collected.append(
                    evaluate_state(
                        new_state,
                        reference=reference,
                        traced=traced,
                        planning_seconds=planning_seconds,
                    )
                )
            result.points.append(_aggregate(scheme.name, level, collected))
    return result


def summarize(result: SweepResult, metric: str = "availability") -> dict[str, list[tuple[float, float]]]:
    """Scheme -> (failure level, metric) series, convenient for printing."""
    return {scheme: result.series(scheme, metric) for scheme in result.schemes()}
