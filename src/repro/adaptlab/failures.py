"""Failure injection for AdaptLab experiments.

Failures are expressed as a target fraction of *capacity* lost (the x-axis
of Figures 7 and 10-16).  Nodes are failed uniformly at random until the
failed capacity reaches the target, which models sub-data-center failures
such as losing racks/rows to a power or cooling event.

Since the trace subsystem landed this module is also a *trace producer*:
:func:`select_capacity_failure` is the pure (non-mutating) selection shared
by the in-place injector and :func:`capacity_failure_trace`, which expresses
the same failure as a replayable :class:`repro.traces.schema.Trace`.  The
consumer side — applying ``capacity`` events during replay — lives in
:class:`repro.traces.replayer.TraceReplayer`, which calls
:func:`set_capacity_fraction` here.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState


def select_capacity_failure(
    state: ClusterState,
    capacity_fraction: float,
    seed: int = 0,
) -> list[str]:
    """Choose the nodes whose failure loses ``capacity_fraction`` of capacity.

    Pure selection (the state is not touched): healthy nodes are shuffled
    with ``seed`` and taken until the failed capacity — counting nodes that
    are already down — reaches the target.  Both
    :func:`inject_capacity_failure` and :func:`capacity_failure_trace` build
    on this, so injecting in place and replaying the produced trace fail the
    exact same nodes.
    """
    if not 0.0 <= capacity_fraction <= 1.0:
        raise ValueError("capacity_fraction must be within [0, 1]")
    total = state.total_capacity(healthy_only=False).cpu
    if total <= 0 or capacity_fraction == 0.0:
        return []
    rng = np.random.default_rng(seed)
    candidates = [n.name for n in state.nodes.values() if n.is_healthy]
    rng.shuffle(candidates)
    failed: list[str] = []
    lost = sum(state.node(n).capacity.cpu for n in state.nodes if state.node(n).failed)
    target = capacity_fraction * total
    for name in candidates:
        if lost >= target - 1e-9:
            break
        lost += state.node(name).capacity.cpu
        failed.append(name)
    return failed


def inject_capacity_failure(
    state: ClusterState,
    capacity_fraction: float,
    seed: int = 0,
) -> list[str]:
    """Fail random nodes until ``capacity_fraction`` of capacity is lost.

    Returns the names of the failed nodes.  The state is mutated in place
    (nodes marked failed; replicas on them remain assigned, as in Kubernetes
    before eviction — schemes decide how to handle them).
    """
    failed = select_capacity_failure(state, capacity_fraction, seed=seed)
    state.fail_nodes(failed)
    return failed


def capacity_failure_trace(
    state: ClusterState,
    capacity_fraction: float,
    seed: int = 0,
    at: float = 0.0,
):
    """The same capacity failure as a replayable trace (producer form).

    Returns a :class:`repro.traces.schema.Trace` with one ``node_failure``
    event at ``at`` naming exactly the nodes
    :func:`inject_capacity_failure` would fail on this state with this
    seed.  An empty selection produces an empty (but valid) trace.
    """
    from repro.traces.schema import NodeFailure, Trace

    failed = select_capacity_failure(state, capacity_fraction, seed=seed)
    events = [NodeFailure(time=float(at), nodes=tuple(failed))] if failed else []
    return Trace(
        events=events,
        metadata={
            "generator": "adaptlab.capacity_failure_trace",
            "capacity_fraction": capacity_fraction,
            "seed": seed,
            "at": at,
        },
    ).validate()


def restore_capacity(state: ClusterState, node_names: list[str]) -> None:
    """Recover previously failed nodes (used by the replay experiment)."""
    state.recover_nodes(node_names)


def set_capacity_fraction(
    state: ClusterState,
    available_fraction: float,
    seed: int = 0,
) -> list[str]:
    """Fail or recover nodes so that ``available_fraction`` of capacity is healthy.

    Used by the trace-replay experiment (Figure 8a) where available capacity
    varies over time — this is also how
    :class:`repro.traces.replayer.TraceReplayer` applies ``capacity``
    events.  Returns the currently failed node names.
    """
    if not 0.0 <= available_fraction <= 1.0:
        raise ValueError("available_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    total = state.total_capacity(healthy_only=False).cpu
    target_failed = (1.0 - available_fraction) * total

    failed_nodes = [n.name for n in state.nodes.values() if n.failed]
    healthy_nodes = [n.name for n in state.nodes.values() if n.is_healthy]
    lost = sum(state.node(n).capacity.cpu for n in failed_nodes)

    if lost < target_failed:  # need to fail more nodes
        rng.shuffle(healthy_nodes)
        to_fail = []
        for name in healthy_nodes:
            if lost >= target_failed - 1e-9:
                break
            lost += state.node(name).capacity.cpu
            to_fail.append(name)
        state.fail_nodes(to_fail)
    elif lost > target_failed:  # recover some nodes
        rng.shuffle(failed_nodes)
        to_recover = []
        for name in failed_nodes:
            if lost <= target_failed + 1e-9:
                break
            lost -= state.node(name).capacity.cpu
            to_recover.append(name)
        state.recover_nodes(to_recover)
    return [n.name for n in state.nodes.values() if n.failed]
