"""Failure injection for AdaptLab experiments.

Failures are expressed as a target fraction of *capacity* lost (the x-axis
of Figures 7 and 10-16).  Nodes are failed uniformly at random until the
failed capacity reaches the target, which models sub-data-center failures
such as losing racks/rows to a power or cooling event.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState


def inject_capacity_failure(
    state: ClusterState,
    capacity_fraction: float,
    seed: int = 0,
) -> list[str]:
    """Fail random nodes until ``capacity_fraction`` of capacity is lost.

    Returns the names of the failed nodes.  The state is mutated in place
    (nodes marked failed; replicas on them remain assigned, as in Kubernetes
    before eviction — schemes decide how to handle them).
    """
    if not 0.0 <= capacity_fraction <= 1.0:
        raise ValueError("capacity_fraction must be within [0, 1]")
    total = state.total_capacity(healthy_only=False).cpu
    if total <= 0 or capacity_fraction == 0.0:
        return []
    rng = np.random.default_rng(seed)
    candidates = [n.name for n in state.nodes.values() if n.is_healthy]
    rng.shuffle(candidates)
    failed: list[str] = []
    lost = sum(state.node(n).capacity.cpu for n in state.nodes if state.node(n).failed)
    target = capacity_fraction * total
    for name in candidates:
        if lost >= target - 1e-9:
            break
        lost += state.node(name).capacity.cpu
        failed.append(name)
    state.fail_nodes(failed)
    return failed


def restore_capacity(state: ClusterState, node_names: list[str]) -> None:
    """Recover previously failed nodes (used by the replay experiment)."""
    state.recover_nodes(node_names)


def set_capacity_fraction(
    state: ClusterState,
    available_fraction: float,
    seed: int = 0,
) -> list[str]:
    """Fail or recover nodes so that ``available_fraction`` of capacity is healthy.

    Used by the trace-replay experiment (Figure 8a) where available capacity
    varies over time.  Returns the currently failed node names.
    """
    if not 0.0 <= available_fraction <= 1.0:
        raise ValueError("available_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    total = state.total_capacity(healthy_only=False).cpu
    target_failed = (1.0 - available_fraction) * total

    failed_nodes = [n.name for n in state.nodes.values() if n.failed]
    healthy_nodes = [n.name for n in state.nodes.values() if n.is_healthy]
    lost = sum(state.node(n).capacity.cpu for n in failed_nodes)

    if lost < target_failed:  # need to fail more nodes
        rng.shuffle(healthy_nodes)
        to_fail = []
        for name in healthy_nodes:
            if lost >= target_failed - 1e-9:
                break
            lost += state.node(name).capacity.cpu
            to_fail.append(name)
        state.fail_nodes(to_fail)
    elif lost > target_failed:  # recover some nodes
        rng.shuffle(failed_nodes)
        to_recover = []
        for name in failed_nodes:
            if lost <= target_failed + 1e-9:
                break
            lost -= state.node(name).capacity.cpu
            to_recover.append(name)
        state.recover_nodes(to_recover)
    return [n.name for n in state.nodes.values() if n.failed]
