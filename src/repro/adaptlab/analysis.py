"""Alibaba workload analysis (Figure 17, Appendix G).

Three analyses over the (synthetic) Alibaba applications:

* application size vs. user requests served (Fig. 17a),
* call-graph size distribution of the top applications (Fig. 17b),
* fraction of requests servable as a function of the fraction of
  microservices activated (Fig. 17c, via the Appendix G optimization).

Plus the §3.2 statistic used to motivate rule-based tagging: the fraction of
microservices with a single upstream caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adaptlab.dependency_graphs import TracedApplication
from repro.adaptlab.frequency_lp import greedy_coverage_curve, max_coverage_with_budget


@dataclass(frozen=True, slots=True)
class AppSummary:
    """One row of Figure 17a."""

    name: str
    microservices: int
    requests: float
    single_upstream_fraction: float


def application_summaries(applications: list[TracedApplication]) -> list[AppSummary]:
    """Size, request volume and single-upstream share per application."""
    return [
        AppSummary(
            name=app.name,
            microservices=app.size,
            requests=app.total_requests,
            single_upstream_fraction=app.single_upstream_fraction(),
        )
        for app in applications
    ]


def single_upstream_fraction(applications: list[TracedApplication], top_k: int | None = None) -> float:
    """Aggregate single-upstream fraction (74-82 % in the paper's analysis)."""
    selected = applications
    if top_k is not None:
        selected = sorted(applications, key=lambda a: a.total_requests, reverse=True)[:top_k]
    singles = 0
    total = 0
    for app in selected:
        non_root = [n for n in app.graph.nodes if app.graph.in_degree(n) > 0]
        total += len(non_root)
        singles += sum(1 for n in non_root if app.graph.in_degree(n) == 1)
    return singles / total if total else 0.0


def call_graph_size_cdf(app: TracedApplication, max_size: int = 20) -> list[tuple[int, float]]:
    """CDF of call-graph sizes weighted by request volume (Fig. 17b)."""
    total = app.total_requests
    if total <= 0:
        return [(size, 0.0) for size in range(1, max_size + 1)]
    sizes = np.array([len(cg) for cg in app.call_graphs])
    weights = np.array([cg.requests for cg in app.call_graphs])
    cdf = []
    for size in range(1, max_size + 1):
        cdf.append((size, float(weights[sizes <= size].sum() / total)))
    return cdf


def requests_vs_microservice_fraction(
    app: TracedApplication,
    fractions: tuple[float, ...] = (0.01, 0.02, 0.03, 0.05, 0.1),
    method: str = "greedy",
) -> list[tuple[float, float]]:
    """Fraction of requests served with a budget of X % of microservices (Fig. 17c)."""
    points = []
    for fraction in fractions:
        budget = max(1, int(round(fraction * app.size)))
        selection = max_coverage_with_budget(app, budget, method=method)
        points.append((fraction, selection.coverage))
    return points


def coverage_curve(app: TracedApplication) -> list[tuple[float, float]]:
    """Full (microservice fraction, request coverage) curve for one application."""
    curve = greedy_coverage_curve(app)
    return [(count / app.size, coverage) for count, coverage in curve]
