"""Resource-assignment models for AdaptLab applications.

The Alibaba traces contain no per-microservice CPU/memory figures, so the
paper approximates them with two models (§6.2):

* **CPM** — resources proportional to calls-per-minute, following the
  Alibaba auto-scaling study on the same dataset, and
* **long-tailed** — resources sampled from the long-tailed (log-normal-like)
  distribution of the Azure Packing 2020 traces.

Both models are implemented here; they return a CPU demand per microservice
(AdaptLab uses a scalar resource model, like the paper).
"""

from __future__ import annotations

import enum
from typing import Mapping

import numpy as np

from repro.adaptlab.dependency_graphs import TracedApplication


class ResourceModel(enum.Enum):
    """Which resource-assignment model to use."""

    CPM = "cpm"
    LONG_TAILED = "long-tailed"

    @classmethod
    def parse(cls, value: "ResourceModel | str") -> "ResourceModel":
        if isinstance(value, ResourceModel):
            return value
        for member in cls:
            if member.value == value or member.name.lower() == str(value).lower():
                return member
        raise ValueError(f"unknown resource model {value!r}")


def cpm_resources(
    app: TracedApplication,
    cpu_per_kcpm: float = 0.5,
    min_cpu: float = 0.1,
) -> dict[str, float]:
    """Resources proportional to calls-per-minute.

    ``cpu_per_kcpm`` is the CPU demand per 1000 calls/minute; the default
    keeps large applications in the hundreds-of-CPU range, comparable to the
    aggregate utilizations in the paper's 100k-node runs.
    """
    counts = app.invocation_counts()
    resources = {}
    for ms, requests_per_day in counts.items():
        calls_per_minute = requests_per_day / (24 * 60)
        resources[ms] = max(min_cpu, cpu_per_kcpm * calls_per_minute / 1000.0)
    return resources


def long_tailed_resources(
    app: TracedApplication,
    seed: int = 7,
    median_cpu: float = 0.5,
    sigma: float = 1.0,
    cap_cpu: float = 16.0,
) -> dict[str, float]:
    """Resources drawn from a long-tailed (log-normal) distribution.

    Mirrors the Azure Packing 2020 trace's shape: most containers are small,
    a few are very large.  Values are capped at ``cap_cpu`` (no container is
    bigger than a node).
    """
    rng = np.random.default_rng(seed + hash(app.name) % 10_000)
    resources = {}
    for ms in app.microservices():
        value = float(np.exp(rng.normal(np.log(median_cpu), sigma)))
        resources[ms] = float(min(cap_cpu, max(0.05, value)))
    return resources


def assign_resources(
    applications: list[TracedApplication],
    model: ResourceModel | str = ResourceModel.CPM,
    seed: int = 7,
) -> dict[str, dict[str, float]]:
    """Assign CPU demands to every microservice of every application."""
    model = ResourceModel.parse(model)
    assignment: dict[str, dict[str, float]] = {}
    for app in applications:
        if model is ResourceModel.CPM:
            assignment[app.name] = cpm_resources(app)
        else:
            assignment[app.name] = long_tailed_resources(app, seed=seed)
    return assignment


def total_demand(assignment: Mapping[str, Mapping[str, float]]) -> float:
    """Aggregate CPU demand across all applications."""
    return sum(sum(per_ms.values()) for per_ms in assignment.values())
