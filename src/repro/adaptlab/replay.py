"""Trace replay: requests served under time-varying capacity (Figure 8a).

The paper replays Alibaba traces on a 10,000-node cluster while the
available capacity varies over a ten-minute window, and shows Phoenix
serving roughly 2× the requests of the non-cooperative baselines.  This
module reproduces that experiment: a capacity trace (fraction of the cluster
available at each timestep) is applied to the environment, each scheme
responds at every step, and the requests-served fraction is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.adaptlab.baselines import ResilienceScheme
from repro.adaptlab.cluster_env import AdaptLabEnvironment
from repro.adaptlab.failures import set_capacity_fraction
from repro.adaptlab.metrics import requests_served_fraction


@dataclass(frozen=True, slots=True)
class CapacityTracePoint:
    """Available capacity fraction at one timestep."""

    time: float
    available_fraction: float


@dataclass
class CapacityTrace:
    """A time series of available capacity fractions."""

    points: list[CapacityTracePoint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @classmethod
    def from_fractions(cls, fractions: Sequence[float], step_seconds: float = 30.0) -> "CapacityTrace":
        return cls(
            points=[
                CapacityTracePoint(time=i * step_seconds, available_fraction=f)
                for i, f in enumerate(fractions)
            ]
        )

    @classmethod
    def paper_profile(cls, steps: int = 20, seed: int = 3, step_seconds: float = 30.0) -> "CapacityTrace":
        """A ten-minute profile shaped like Figure 8a: a deep failure trough
        followed by staged recovery, with small jitter."""
        rng = np.random.default_rng(seed)
        base = np.concatenate(
            [
                np.full(steps // 4, 1.0),
                np.linspace(1.0, 0.35, steps // 4),
                np.full(steps // 4, 0.35),
                np.linspace(0.35, 1.0, steps - 3 * (steps // 4)),
            ]
        )
        jitter = rng.uniform(-0.03, 0.03, size=base.shape)
        fractions = np.clip(base + jitter, 0.2, 1.0)
        return cls.from_fractions(list(map(float, fractions)), step_seconds=step_seconds)


@dataclass
class ReplayPoint:
    """One (scheme, time) observation during replay."""

    scheme: str
    time: float
    available_fraction: float
    requests_served: float


@dataclass
class ReplayResult:
    points: list[ReplayPoint] = field(default_factory=list)

    def series(self, scheme: str) -> list[tuple[float, float]]:
        return [(p.time, p.requests_served) for p in self.points if p.scheme == scheme]

    def total_served(self, scheme: str) -> float:
        """Integral of requests served over the replay (relative units)."""
        return sum(p.requests_served for p in self.points if p.scheme == scheme)

    def improvement(self, scheme: str, baseline: str) -> float:
        """How many times more requests ``scheme`` served than ``baseline``."""
        base = self.total_served(baseline)
        if base <= 0:
            return float("inf")
        return self.total_served(scheme) / base


def replay_capacity_trace(
    env: AdaptLabEnvironment,
    schemes: Iterable[ResilienceScheme],
    trace: CapacityTrace | None = None,
    seed: int = 0,
) -> ReplayResult:
    """Replay a capacity trace against each scheme independently.

    Every scheme starts from the same pre-failure state and reacts to the
    same capacity trace; at each step the requests-served fraction is
    recorded (Figure 8a's y-axis).
    """
    trace = trace or CapacityTrace.paper_profile()
    result = ReplayResult()
    for scheme in schemes:
        state = env.fresh_state()
        for point in trace:
            set_capacity_fraction(state, point.available_fraction, seed=seed)
            state, _ = scheme.respond(state)
            served = requests_served_fraction(state, env.traced)
            result.points.append(
                ReplayPoint(
                    scheme=scheme.name,
                    time=point.time,
                    available_fraction=point.available_fraction,
                    requests_served=served,
                )
            )
    return result
