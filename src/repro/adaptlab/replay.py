"""Trace replay: requests served under time-varying capacity (Figure 8a).

The paper replays Alibaba traces on a 10,000-node cluster while the
available capacity varies over a ten-minute window, and shows Phoenix
serving roughly 2× the requests of the non-cooperative baselines.  This
module reproduces that experiment as a thin *consumer* of the trace
subsystem: the capacity profile is a :class:`repro.traces.schema.Trace` of
``capacity`` events and each scheme is driven through
:class:`repro.traces.replayer.TraceReplayer`.

:class:`CapacityTrace` is the legacy in-memory form of a capacity profile;
it round-trips to the schema via :meth:`CapacityTrace.to_trace` /
:meth:`CapacityTrace.from_trace`, and its :meth:`paper_profile` shares its
math with :func:`repro.traces.alibaba.paper_capacity_trace` so the two
representations can never drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.adaptlab.baselines import ResilienceScheme
from repro.adaptlab.cluster_env import AdaptLabEnvironment
from repro.traces.alibaba import (
    from_capacity_points,
    paper_profile_fractions,
    to_capacity_points,
)
from repro.traces.replayer import TraceReplayer
from repro.traces.schema import Trace


@dataclass(frozen=True, slots=True)
class CapacityTracePoint:
    """Available capacity fraction at one timestep."""

    time: float
    available_fraction: float


@dataclass
class CapacityTrace:
    """A time series of available capacity fractions.

    The legacy, capacity-only trace form.  New code should prefer the
    versioned schema (:class:`repro.traces.schema.Trace`, which also
    carries node-level and load events); this class remains the convenient
    in-memory view and converts losslessly in both directions.
    """

    points: list[CapacityTracePoint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @classmethod
    def from_fractions(cls, fractions: Sequence[float], step_seconds: float = 30.0) -> "CapacityTrace":
        return cls(
            points=[
                CapacityTracePoint(time=i * step_seconds, available_fraction=f)
                for i, f in enumerate(fractions)
            ]
        )

    @classmethod
    def paper_profile(cls, steps: int = 20, seed: int = 3, step_seconds: float = 30.0) -> "CapacityTrace":
        """A ten-minute profile shaped like Figure 8a: a deep failure trough
        followed by staged recovery, with small jitter."""
        return cls.from_fractions(
            paper_profile_fractions(steps=steps, seed=seed), step_seconds=step_seconds
        )

    def to_trace(self) -> Trace:
        """This profile as a schema trace of ``capacity`` events (lossless)."""
        return from_capacity_points(
            self.points, metadata={"generator": "adaptlab.CapacityTrace"}
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "CapacityTrace":
        """The ``capacity`` events of a schema trace as a legacy profile."""
        return cls(
            points=[
                CapacityTracePoint(time=t, available_fraction=f)
                for t, f in to_capacity_points(trace)
            ]
        )


@dataclass
class ReplayPoint:
    """One (scheme, time) observation during replay."""

    scheme: str
    time: float
    available_fraction: float
    requests_served: float


@dataclass
class ReplayResult:
    points: list[ReplayPoint] = field(default_factory=list)

    def series(self, scheme: str) -> list[tuple[float, float]]:
        return [(p.time, p.requests_served) for p in self.points if p.scheme == scheme]

    def total_served(self, scheme: str) -> float:
        """Integral of requests served over the replay (relative units)."""
        return sum(p.requests_served for p in self.points if p.scheme == scheme)

    def improvement(self, scheme: str, baseline: str) -> float:
        """How many times more requests ``scheme`` served than ``baseline``."""
        base = self.total_served(baseline)
        if base <= 0:
            return float("inf")
        return self.total_served(scheme) / base


def replay_capacity_trace(
    env: AdaptLabEnvironment,
    schemes: Iterable[ResilienceScheme],
    trace: CapacityTrace | Trace | None = None,
    seed: int = 0,
) -> ReplayResult:
    """Replay a capacity trace against each scheme independently.

    Every scheme starts from the same pre-failure state and reacts to the
    same capacity trace; at each step the requests-served fraction is
    recorded (Figure 8a's y-axis).  ``trace`` may be the legacy
    :class:`CapacityTrace` or any schema :class:`~repro.traces.schema.Trace`
    (its ``capacity`` events are replayed); each scheme runs through a
    :class:`~repro.traces.replayer.TraceReplayer` in AdaptLab (``respond``)
    mode.
    """
    if trace is None:
        trace = CapacityTrace.paper_profile()
    schema_trace = trace if isinstance(trace, Trace) else trace.to_trace()
    requested = dict(to_capacity_points(schema_trace))
    result = ReplayResult()
    for scheme in schemes:
        replayer = TraceReplayer(scheme, traced=env.traced, seed=seed)
        metrics = replayer.run(env.fresh_state(), schema_trace)
        for step in metrics:
            result.points.append(
                ReplayPoint(
                    scheme=scheme.name,
                    time=step.time,
                    available_fraction=requested.get(step.time, step.available_fraction),
                    requests_served=step.requests_served,
                )
            )
    return result
