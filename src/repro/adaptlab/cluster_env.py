"""AdaptLab environment builder.

An *environment* is a pre-failure cluster: N uniform nodes, the 18
Alibaba-like applications tagged and sized according to the chosen schemes,
and an initial placement of every microservice.  Experiments copy the
environment's state, inject failures, let a resilience scheme respond, and
measure the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.adaptlab.dependency_graphs import TracedApplication, generate_alibaba_applications
from repro.adaptlab.resources import ResourceModel, assign_resources
from repro.adaptlab.tagging import TaggingScheme, tag_applications
from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.criticality import CriticalityTag


@dataclass
class AdaptLabEnvironment:
    """A ready-to-run AdaptLab scenario."""

    state: ClusterState
    traced: dict[str, TracedApplication]
    tagging_scheme: TaggingScheme
    resource_model: ResourceModel
    node_capacity: float
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def applications(self) -> dict[str, Application]:
        return self.state.applications

    def fresh_state(self) -> ClusterState:
        """A copy of the pre-failure state for one experiment trial."""
        return self.state.copy()


def _build_application(
    traced: TracedApplication,
    resources: Mapping[str, float],
    tags: Mapping[str, CriticalityTag],
    price_per_unit: float,
) -> Application:
    microservices = [
        Microservice(
            name=ms,
            resources=Resources.cpu_only(resources[ms]),
            criticality=tags.get(ms, CriticalityTag(1)),
        )
        for ms in traced.microservices()
    ]
    return Application.from_microservices(
        traced.name,
        microservices,
        dependency_edges=list(traced.graph.edges),
        price_per_unit=price_per_unit,
        critical_service=None,
    )


def _initial_placement(state: ClusterState) -> None:
    """Place every microservice with first-fit-decreasing (pre-failure state)."""
    entries = []
    for app_name, app in state.applications.items():
        for ms in app:
            entries.append((ms.resources.cpu, app_name, ms.name))
    entries.sort(reverse=True)
    nodes = sorted(state.nodes.values(), key=lambda n: n.name)
    cursor = 0
    for cpu, app_name, ms_name in entries:
        placed = False
        for offset in range(len(nodes)):
            node = nodes[(cursor + offset) % len(nodes)]
            demand = state.application(app_name).get(ms_name).resources
            if demand.fits_within(state.free_on(node.name)):
                state.assign(ReplicaId(app_name, ms_name, 0), node.name)
                cursor = (cursor + offset + 1) % len(nodes)
                placed = True
                break
        if not placed:
            raise RuntimeError(
                f"environment is over-subscribed: {app_name}/{ms_name} ({cpu} cpu) does not fit"
            )


def build_environment(
    node_count: int = 1000,
    n_apps: int = 18,
    tagging_scheme: TaggingScheme | str = TaggingScheme.SERVICE_P90,
    resource_model: ResourceModel | str = ResourceModel.CPM,
    target_utilization: float = 0.7,
    seed: int = 2025,
    applications: list[TracedApplication] | None = None,
    price_levels: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0),
) -> AdaptLabEnvironment:
    """Build an AdaptLab environment.

    Parameters
    ----------
    node_count:
        Cluster size; the paper evaluates up to 100,000 nodes.
    tagging_scheme / resource_model:
        Which of the paper's criticality/resource assignment schemes to use.
    target_utilization:
        Pre-failure cluster utilization; node capacity is derived from the
        aggregate demand so the initial placement always fits.
    applications:
        Pre-generated traced applications (to share them across environments
        and avoid regenerating for every configuration).
    price_levels:
        Willingness-to-pay values assigned round-robin (by application rank)
        for the revenue-based objective.
    """
    if not 0.0 < target_utilization <= 0.95:
        raise ValueError("target_utilization must be in (0, 0.95]")
    tagging_scheme = TaggingScheme.parse(tagging_scheme)
    resource_model = ResourceModel.parse(resource_model)

    traced_apps = applications if applications is not None else generate_alibaba_applications(
        n_apps=n_apps, seed=seed
    )
    resources = assign_resources(traced_apps, model=resource_model, seed=seed)
    tags = tag_applications(traced_apps, scheme=tagging_scheme, seed=seed)

    rng = np.random.default_rng(seed)
    apps: list[Application] = []
    for index, traced in enumerate(traced_apps):
        price = price_levels[int(rng.integers(0, len(price_levels)))]
        apps.append(_build_application(traced, resources[traced.name], tags[traced.name], price))

    total_demand = sum(app.total_demand().cpu for app in apps)
    largest_ms = max(ms.resources.cpu for app in apps for ms in app)
    node_capacity = max(total_demand / (target_utilization * node_count), largest_ms * 1.05)

    nodes = [Node(f"node-{i}", Resources.cpu_only(node_capacity)) for i in range(node_count)]
    state = ClusterState(nodes=nodes, applications=apps)
    _initial_placement(state)

    return AdaptLabEnvironment(
        state=state,
        traced={t.name: t for t in traced_apps},
        tagging_scheme=tagging_scheme,
        resource_model=resource_model,
        node_capacity=node_capacity,
        metadata={
            "seed": seed,
            "node_count": node_count,
            "target_utilization": target_utilization,
            "total_demand_cpu": total_demand,
        },
    )
