"""Synthetic Alibaba-trace-like application dependency graphs.

The paper derives 18 application dependency graphs (10 to ~3000
microservices) from the Alibaba 2021 cluster traces and reports several
structural properties (§3.2, Appendix G):

* application sizes and request volumes are heavily skewed — a few large
  applications serve most user requests (Fig. 17a),
* 74-82 % of microservices have a single upstream caller,
* call graphs (per-request sub-graphs) are small: for the largest
  application >80 % of call graphs touch fewer than 10 microservices
  (Fig. 17b),
* a small fraction of microservices (~3 %) can serve >80 % of requests
  (Fig. 17c).

The traces themselves are not redistributable and require Apache Spark to
process, so this module generates applications with the same structural
properties from a seeded RNG.  Everything downstream (tagging, resource
assignment, the harness) only consumes these aggregate properties, which is
exactly what the paper's evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np


@dataclass(frozen=True, slots=True)
class CallGraph:
    """One call-graph template: the microservices a request type touches."""

    microservices: tuple[str, ...]
    #: How many user requests per day follow this template.
    requests: float

    def __len__(self) -> int:
        return len(self.microservices)


@dataclass
class TracedApplication:
    """An application dependency graph plus its call-graph templates."""

    name: str
    graph: nx.DiGraph
    call_graphs: list[CallGraph] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def total_requests(self) -> float:
        return sum(cg.requests for cg in self.call_graphs)

    def microservices(self) -> list[str]:
        return sorted(self.graph.nodes)

    def entry_point(self) -> str:
        """The root microservice every call graph starts from."""
        roots = [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]
        return roots[0] if roots else next(iter(sorted(self.graph.nodes)))

    def single_upstream_fraction(self) -> float:
        """Fraction of microservices invoked by exactly one upstream caller."""
        non_root = [n for n in self.graph.nodes if self.graph.in_degree(n) > 0]
        if not non_root:
            return 0.0
        single = sum(1 for n in non_root if self.graph.in_degree(n) == 1)
        return single / len(non_root)

    def invocation_counts(self) -> dict[str, float]:
        """Requests per day that touch each microservice (popularity)."""
        counts = {name: 0.0 for name in self.graph.nodes}
        for cg in self.call_graphs:
            for ms in cg.microservices:
                counts[ms] += cg.requests
        return counts


# -- generation ------------------------------------------------------------------


def _application_sizes(n_apps: int, rng: np.random.Generator) -> list[int]:
    """Heavy-tailed application sizes between ~10 and ~3000 microservices."""
    sizes = []
    for rank in range(n_apps):
        # Top-ranked applications are much larger (Zipf-like over ranks); the
        # steep exponent reproduces the paper's spread of ~10 to ~3000
        # microservices across the 18 applications.
        base = 3000 / (rank + 1) ** 2.0
        jitter = rng.uniform(0.8, 1.2)
        sizes.append(int(np.clip(base * jitter, 10, 3200)))
    return sizes


def _request_volumes(n_apps: int, rng: np.random.Generator) -> list[float]:
    """Requests/day per application; top four serve the lion's share."""
    volumes = []
    for rank in range(n_apps):
        base = 1_300_000 / (rank + 1) ** 1.6
        volumes.append(base * rng.uniform(0.85, 1.15))
    return volumes


def _build_graph(name: str, size: int, rng: np.random.Generator) -> nx.DiGraph:
    """Build a mostly-tree DG where ~80 % of nodes have a single upstream."""
    graph = nx.DiGraph()
    nodes = [f"{name}-ms{i:04d}" for i in range(size)]
    graph.add_nodes_from(nodes)
    for index in range(1, size):
        # Preferential attachment to earlier (more "core") microservices
        # produces realistic fan-out from gateway/aggregator services.
        parent_index = int(rng.beta(1.2, 4.0) * index)
        graph.add_edge(nodes[parent_index], nodes[index])
        # ~20 % of non-root microservices gain one extra upstream caller.
        if index > 2 and rng.random() < 0.2:
            extra_parent = int(rng.integers(0, index))
            if extra_parent != index and nodes[extra_parent] != nodes[index]:
                graph.add_edge(nodes[extra_parent], nodes[index])
    return graph


def _sample_call_graphs(
    name: str,
    graph: nx.DiGraph,
    total_requests: float,
    rng: np.random.Generator,
    templates: int,
) -> list[CallGraph]:
    """Sample heavy-tailed call-graph templates rooted at the entry node.

    Template sizes follow a long-tailed distribution (most are tiny, a few
    span dozens of microservices); template popularity follows a Zipf
    distribution so a handful of templates account for most requests.
    """
    nodes = sorted(graph.nodes)
    root = [n for n in nodes if graph.in_degree(n) == 0]
    entry = root[0] if root else nodes[0]
    weights = 1.0 / np.arange(1, templates + 1) ** 1.3
    weights = weights / weights.sum() * total_requests

    call_graphs: list[CallGraph] = []
    for template_index in range(templates):
        # Long-tailed size: most templates touch < 10 microservices.
        size = 2 + int(rng.pareto(1.6) * 2.0)
        size = min(size, max(2, graph.number_of_nodes() // 2))
        visited = [entry]
        frontier = list(graph.successors(entry))
        while frontier and len(visited) < size:
            nxt = frontier.pop(int(rng.integers(0, len(frontier))))
            if nxt in visited:
                continue
            visited.append(nxt)
            frontier.extend(graph.successors(nxt))
        call_graphs.append(
            CallGraph(microservices=tuple(visited), requests=float(weights[template_index]))
        )
    return call_graphs


def generate_alibaba_applications(
    n_apps: int = 18,
    seed: int = 2025,
    templates_per_app: int = 60,
) -> list[TracedApplication]:
    """Generate the 18 Alibaba-like applications used by AdaptLab.

    Deterministic for a given seed, so experiments are reproducible.
    """
    if n_apps < 1:
        raise ValueError("n_apps must be positive")
    rng = np.random.default_rng(seed)
    sizes = _application_sizes(n_apps, rng)
    volumes = _request_volumes(n_apps, rng)
    applications = []
    for index, (size, volume) in enumerate(zip(sizes, volumes)):
        name = f"app{index + 1}"
        graph = _build_graph(name, size, rng)
        call_graphs = _sample_call_graphs(
            name, graph, volume, rng, templates=min(templates_per_app, max(4, size))
        )
        applications.append(TracedApplication(name=name, graph=graph, call_graphs=call_graphs))
    return applications
