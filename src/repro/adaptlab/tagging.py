"""Criticality-tagging schemes for AdaptLab applications (§6.2).

The Alibaba traces carry no criticality information, so the paper assigns
tags with two schemes, each at the 50th and 90th percentile of request
coverage:

* **service-level tagging** — the most frequently invoked *services*
  (call-graph templates) are identified until they cover the target fraction
  of requests; every microservice they touch is tagged C1.
* **frequency-based tagging** — a linear program (Appendix G) finds the
  smallest *set of microservices* that can serve the target fraction of
  requests; those microservices are tagged C1.

In both schemes the remaining microservices receive lower criticalities
ordered by their invocation frequency, and a small random fraction of
infrequently invoked microservices is promoted to C1 to model critical
background services (e.g. garbage collection).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.adaptlab.dependency_graphs import TracedApplication
from repro.adaptlab.frequency_lp import minimal_microservices_for_coverage
from repro.criticality import DEFAULT_LEVELS, CriticalityTag


class TaggingScheme(enum.Enum):
    """The four schemes evaluated in the paper (Figures 7, 10-16)."""

    SERVICE_P50 = "service-p50"
    SERVICE_P90 = "service-p90"
    FREQUENCY_P50 = "frequency-p50"
    FREQUENCY_P90 = "frequency-p90"

    @classmethod
    def parse(cls, value: "TaggingScheme | str") -> "TaggingScheme":
        if isinstance(value, TaggingScheme):
            return value
        for member in cls:
            if member.value == str(value).lower():
                return member
        raise ValueError(f"unknown tagging scheme {value!r}")

    @property
    def percentile(self) -> float:
        return 0.5 if self.value.endswith("p50") else 0.9

    @property
    def is_service_level(self) -> bool:
        return self.value.startswith("service")


def _critical_set_service_level(app: TracedApplication, percentile: float) -> set[str]:
    """Microservices of the most popular call-graph templates covering
    ``percentile`` of requests."""
    total = app.total_requests
    if total <= 0:
        return set(app.microservices())
    covered = 0.0
    critical: set[str] = set()
    for cg in sorted(app.call_graphs, key=lambda c: c.requests, reverse=True):
        if covered / total >= percentile:
            break
        critical.update(cg.microservices)
        covered += cg.requests
    return critical


def _critical_set_frequency(app: TracedApplication, percentile: float) -> set[str]:
    """LP/greedy minimal microservice set covering ``percentile`` of requests."""
    selection = minimal_microservices_for_coverage(app, percentile)
    return set(selection.microservices)


def _frequency_levels(app: TracedApplication, critical: set[str]) -> dict[str, CriticalityTag]:
    """Assign C2..C10 to non-critical microservices by invocation frequency."""
    counts = app.invocation_counts()
    others = sorted(
        (ms for ms in app.microservices() if ms not in critical),
        key=lambda ms: counts[ms],
        reverse=True,
    )
    tags: dict[str, CriticalityTag] = {ms: CriticalityTag(1) for ms in critical}
    if not others:
        return tags
    levels = DEFAULT_LEVELS - 1  # C2..C10
    bucket = max(1, int(np.ceil(len(others) / levels)))
    for index, ms in enumerate(others):
        level = min(DEFAULT_LEVELS, 2 + index // bucket)
        tags[ms] = CriticalityTag(level)
    return tags


def tag_application(
    app: TracedApplication,
    scheme: TaggingScheme | str,
    seed: int = 11,
    background_critical_fraction: float = 0.01,
) -> dict[str, CriticalityTag]:
    """Assign criticality tags to one application under a tagging scheme."""
    scheme = TaggingScheme.parse(scheme)
    if scheme.is_service_level:
        critical = _critical_set_service_level(app, scheme.percentile)
    else:
        critical = _critical_set_frequency(app, scheme.percentile)

    # Promote a small random set of infrequently invoked microservices to C1
    # (critical background services such as garbage collection).
    counts = app.invocation_counts()
    infrequent = sorted(
        (ms for ms in app.microservices() if ms not in critical),
        key=lambda ms: counts[ms],
    )
    rng = np.random.default_rng(seed + app.size)
    promote = max(0, int(round(background_critical_fraction * app.size)))
    for ms in rng.permutation(infrequent)[:promote]:
        critical.add(str(ms))

    return _frequency_levels(app, critical)


def tag_applications(
    applications: list[TracedApplication],
    scheme: TaggingScheme | str,
    seed: int = 11,
) -> dict[str, dict[str, CriticalityTag]]:
    """Tag every application; returns app name -> (microservice -> tag)."""
    return {app.name: tag_application(app, scheme, seed=seed) for app in applications}
