"""Evaluation metrics (§6): critical service availability, revenue, fairness
deviation, cluster utilization and requests served.

All metrics operate on a :class:`ClusterState`; "active" means every replica
of a microservice is assigned to a healthy node.

The per-application inputs the metrics need — revenue rate and CPU size per
microservice, total demand, the C1 microservice list — are pure functions of
the (immutable) :class:`Application` objects, so they are computed once per
application instance and cached (identity-validated, like the planner's
split cache).  Metric *values* are bit-identical with or without the cache:
every sum accumulates the same floats in the same order.  This keeps the
per-step cost of trace replay proportional to the number of microservices,
with no per-step :class:`Resources` object churn.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Mapping

from repro.adaptlab.dependency_graphs import TracedApplication
from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.objectives import microservice_revenue_rate, water_fill_shares


@dataclass(frozen=True, slots=True)
class FairnessDeviation:
    """Deviation from max-min fair share, split by sign (Figure 7c)."""

    positive: float
    negative: float

    @property
    def total(self) -> float:
        return self.positive + self.negative


@dataclass
class SchemeMetrics:
    """All metrics for one (scheme, failure level, trial) data point."""

    critical_service_availability: float
    normalized_revenue: float
    fairness: FairnessDeviation
    utilization: float
    requests_served_fraction: float | None = None
    planning_seconds: float = 0.0
    per_app_availability: dict[str, bool] = field(default_factory=dict)


# -- cached per-application statics ----------------------------------------------


@dataclass(frozen=True, slots=True)
class _AppStatics:
    """Pure-function-of-the-application inputs the metrics reuse every step.

    Dicts preserve the application's microservice iteration order, so sums
    over them accumulate in exactly the order the uncached loops used.
    """

    #: ms name -> revenue per unit time while active (microservice_revenue_rate)
    revenue_rates: dict[str, float]
    #: ms name -> total CPU of the microservice (all replicas)
    cpu_totals: dict[str, float]
    #: names of C1-tagged microservices, in application order
    critical: tuple[str, ...]
    #: app.total_demand().cpu
    total_demand_cpu: float


#: id(app) -> (weakref to the app, statics); identity-validated so replaced
#: Application objects (re-tagging, re-registration) never reuse stale data.
_APP_STATICS: dict[int, tuple["weakref.ref[Application]", _AppStatics]] = {}


def _statics_for(app: Application) -> _AppStatics:
    key = id(app)
    hit = _APP_STATICS.get(key)
    if hit is not None and hit[0]() is app:
        return hit[1]
    revenue_rates: dict[str, float] = {}
    cpu_totals: dict[str, float] = {}
    critical: list[str] = []
    for ms in app:
        revenue_rates[ms.name] = microservice_revenue_rate(app, ms)
        cpu_totals[ms.name] = ms.total_resources.cpu
        if ms.criticality.level == 1:
            critical.append(ms.name)
    statics = _AppStatics(
        revenue_rates=revenue_rates,
        cpu_totals=cpu_totals,
        critical=tuple(critical),
        total_demand_cpu=app.total_demand().cpu,
    )
    if len(_APP_STATICS) > 4096:  # drop entries whose application died
        for stale in [k for k, (ref, _) in _APP_STATICS.items() if ref() is None]:
            del _APP_STATICS[stale]
    _APP_STATICS[key] = (weakref.ref(app), statics)
    return statics


#: reference state -> (generation at evaluation, revenue); reference states
#: are frozen during a replay, and the generation counter catches mutation.
_REFERENCE_REVENUE: "weakref.WeakKeyDictionary[ClusterState, tuple[int, float]]" = (
    weakref.WeakKeyDictionary()
)


# -- individual metrics ----------------------------------------------------------


def critical_service_availability(
    state: ClusterState,
    active_by_app: dict[str, set[str]] | None = None,
) -> tuple[float, dict[str, bool]]:
    """Fraction of applications whose C1 microservices are all active.

    Matches the paper's AdaptLab definition: an application's critical
    service goal is met when *all* of its C1-tagged microservices run.
    ``active_by_app`` lets callers share one ``state.active_microservices()``
    snapshot across several metrics.
    """
    active = active_by_app if active_by_app is not None else state.active_microservices()
    per_app: dict[str, bool] = {}
    for name, app in state.applications.items():
        critical = _statics_for(app).critical
        per_app[name] = all(ms in active[name] for ms in critical) if critical else True
    if not per_app:
        return 1.0, per_app
    return sum(per_app.values()) / len(per_app), per_app


def _revenue(target: ClusterState, active_by_app: dict[str, set[str]] | None = None) -> float:
    active = active_by_app if active_by_app is not None else target.active_microservices()
    value = 0.0
    for name, app in target.applications.items():
        rates = _statics_for(app).revenue_rates
        active_here = active[name]
        for ms_name, rate in rates.items():
            if ms_name in active_here:
                value += rate
    return value


def cluster_revenue(
    state: ClusterState, active_by_app: dict[str, set[str]] | None = None
) -> float:
    """Absolute revenue earned by the currently active microservices.

    The un-normalized form of :func:`normalized_revenue`, used by the fleet
    layer to aggregate revenue across cells before normalizing against the
    fleet-wide reference.  Same accumulation order as the normalized path.
    """
    return _revenue(state, active_by_app)


def potential_revenue(state: ClusterState) -> float:
    """Revenue the cluster would earn with every microservice active.

    The reference denominator :func:`normalized_revenue` uses when no
    reference state is given — a flat sum of every microservice's revenue
    rate in (application, microservice) order.
    """
    return sum(
        rate
        for app in state.applications.values()
        for rate in _statics_for(app).revenue_rates.values()
    )


def normalized_revenue(
    state: ClusterState,
    reference: ClusterState | None = None,
    active_by_app: dict[str, set[str]] | None = None,
) -> float:
    """Revenue from active microservices, normalized to the pre-failure state.

    Revenue of a microservice = willingness-to-pay × CPU × criticality
    weight (see :func:`microservice_revenue_rate`), earned only while it is
    active (§6 "Revenue is computed based on whether a microservice is
    activated or not when failures strike").  The reference state's revenue
    is cached per (state, generation) — replay loops evaluate against the
    same frozen pre-failure state thousands of times.
    """
    achieved = _revenue(state, active_by_app)
    if reference is None:
        # Flat sum in (application, microservice) order — the same float
        # accumulation sequence as summing microservice_revenue_rate live.
        baseline = sum(
            rate
            for app in state.applications.values()
            for rate in _statics_for(app).revenue_rates.values()
        )
    else:
        cached = _REFERENCE_REVENUE.get(reference)
        generation = reference.generation
        if cached is not None and cached[0] == generation:
            baseline = cached[1]
        else:
            baseline = _revenue(reference)
            _REFERENCE_REVENUE[reference] = (generation, baseline)
    if baseline <= 0:
        return 0.0
    return achieved / baseline


def fairness_deviation(
    state: ClusterState,
    active_by_app: dict[str, set[str]] | None = None,
) -> FairnessDeviation:
    """Positive/negative deviation from the water-filling fair share.

    Shares are computed over the *healthy* capacity at measurement time, so
    the metric reflects how fairly the surviving capacity was divided.  Both
    components are normalized by the healthy capacity.
    """
    capacity = state.total_capacity().cpu
    demands = {
        name: _statics_for(app).total_demand_cpu
        for name, app in state.applications.items()
    }
    shares = water_fill_shares(demands, capacity)
    active = active_by_app if active_by_app is not None else state.active_microservices()
    usage = {name: 0.0 for name in state.applications}
    for name, app in state.applications.items():
        cpu_totals = _statics_for(app).cpu_totals
        active_here = active[name]
        used = 0.0
        for ms_name, cpu in cpu_totals.items():
            if ms_name in active_here:
                used += cpu
        usage[name] = used
    positive = sum(max(0.0, usage[a] - shares[a]) for a in usage)
    negative = sum(max(0.0, shares[a] - usage[a]) for a in usage)
    if capacity <= 0:
        return FairnessDeviation(0.0, 0.0)
    return FairnessDeviation(positive / capacity, negative / capacity)


def cluster_utilization(state: ClusterState) -> float:
    """Fraction of healthy capacity used by assigned replicas (Figure 8c)."""
    return state.utilization()


def requests_served_fraction(
    state: ClusterState,
    traced: Mapping[str, TracedApplication],
    active_by_app: dict[str, set[str]] | None = None,
) -> float:
    """Fraction of user requests fully servable given the active microservices.

    A request (call-graph template) is served only when every microservice
    it touches is active — the measure behind Figure 8a and the paper's
    "2× requests served" claim.
    """
    total = 0.0
    served = 0.0
    if active_by_app is None:
        active_by_app = state.active_microservices()
    for name, app in traced.items():
        if name not in state.applications:
            continue
        active = active_by_app[name]
        for cg in app.call_graphs:
            total += cg.requests
            if set(cg.microservices) <= active:
                served += cg.requests
    if total <= 0:
        return 0.0
    return served / total


def evaluate_state(
    state: ClusterState,
    reference: ClusterState | None = None,
    traced: Mapping[str, TracedApplication] | None = None,
    planning_seconds: float = 0.0,
) -> SchemeMetrics:
    """Compute the full metric bundle for one post-response cluster state.

    The active-microservice snapshot is computed once and shared across the
    individual metrics (it is by far their most expensive common input).
    """
    active = state.active_microservices()
    availability, per_app = critical_service_availability(state, active_by_app=active)
    return SchemeMetrics(
        critical_service_availability=availability,
        normalized_revenue=normalized_revenue(state, reference, active_by_app=active),
        fairness=fairness_deviation(state, active_by_app=active),
        utilization=cluster_utilization(state),
        requests_served_fraction=(
            requests_served_fraction(state, traced, active_by_app=active)
            if traced is not None
            else None
        ),
        planning_seconds=planning_seconds,
        per_app_availability=per_app,
    )
