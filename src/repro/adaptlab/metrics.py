"""Evaluation metrics (§6): critical service availability, revenue, fairness
deviation, cluster utilization and requests served.

All metrics operate on a :class:`ClusterState`; "active" means every replica
of a microservice is assigned to a healthy node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.adaptlab.dependency_graphs import TracedApplication
from repro.cluster.state import ClusterState
from repro.core.objectives import microservice_revenue_rate, water_fill_shares


@dataclass(frozen=True, slots=True)
class FairnessDeviation:
    """Deviation from max-min fair share, split by sign (Figure 7c)."""

    positive: float
    negative: float

    @property
    def total(self) -> float:
        return self.positive + self.negative


@dataclass
class SchemeMetrics:
    """All metrics for one (scheme, failure level, trial) data point."""

    critical_service_availability: float
    normalized_revenue: float
    fairness: FairnessDeviation
    utilization: float
    requests_served_fraction: float | None = None
    planning_seconds: float = 0.0
    per_app_availability: dict[str, bool] = field(default_factory=dict)


# -- individual metrics ----------------------------------------------------------


def critical_service_availability(state: ClusterState) -> tuple[float, dict[str, bool]]:
    """Fraction of applications whose C1 microservices are all active.

    Matches the paper's AdaptLab definition: an application's critical
    service goal is met when *all* of its C1-tagged microservices run.
    """
    active = state.active_microservices()
    per_app: dict[str, bool] = {}
    for name, app in state.applications.items():
        critical = [ms.name for ms in app if ms.criticality.level == 1]
        per_app[name] = all(ms in active[name] for ms in critical) if critical else True
    if not per_app:
        return 1.0, per_app
    return sum(per_app.values()) / len(per_app), per_app


def normalized_revenue(state: ClusterState, reference: ClusterState | None = None) -> float:
    """Revenue from active microservices, normalized to the pre-failure state.

    Revenue of a microservice = willingness-to-pay × CPU × criticality
    weight (see :func:`microservice_revenue_rate`), earned only while it is
    active (§6 "Revenue is computed based on whether a microservice is
    activated or not when failures strike").
    """

    def revenue(target: ClusterState) -> float:
        active = target.active_microservices()
        value = 0.0
        for name, app in target.applications.items():
            for ms in app:
                if ms.name in active[name]:
                    value += microservice_revenue_rate(app, ms)
        return value

    achieved = revenue(state)
    if reference is None:
        baseline = sum(
            microservice_revenue_rate(app, ms)
            for app in state.applications.values()
            for ms in app
        )
    else:
        baseline = revenue(reference)
    if baseline <= 0:
        return 0.0
    return achieved / baseline


def fairness_deviation(state: ClusterState) -> FairnessDeviation:
    """Positive/negative deviation from the water-filling fair share.

    Shares are computed over the *healthy* capacity at measurement time, so
    the metric reflects how fairly the surviving capacity was divided.  Both
    components are normalized by the healthy capacity.
    """
    capacity = state.total_capacity().cpu
    demands = {name: app.total_demand().cpu for name, app in state.applications.items()}
    shares = water_fill_shares(demands, capacity)
    active = state.active_microservices()
    usage = {name: 0.0 for name in state.applications}
    for name, app in state.applications.items():
        for ms in app:
            if ms.name in active[name]:
                usage[name] += ms.total_resources.cpu
    positive = sum(max(0.0, usage[a] - shares[a]) for a in usage)
    negative = sum(max(0.0, shares[a] - usage[a]) for a in usage)
    if capacity <= 0:
        return FairnessDeviation(0.0, 0.0)
    return FairnessDeviation(positive / capacity, negative / capacity)


def cluster_utilization(state: ClusterState) -> float:
    """Fraction of healthy capacity used by assigned replicas (Figure 8c)."""
    return state.utilization()


def requests_served_fraction(
    state: ClusterState,
    traced: Mapping[str, TracedApplication],
) -> float:
    """Fraction of user requests fully servable given the active microservices.

    A request (call-graph template) is served only when every microservice
    it touches is active — the measure behind Figure 8a and the paper's
    "2× requests served" claim.
    """
    total = 0.0
    served = 0.0
    active_by_app = state.active_microservices()
    for name, app in traced.items():
        if name not in state.applications:
            continue
        active = active_by_app[name]
        for cg in app.call_graphs:
            total += cg.requests
            if set(cg.microservices) <= active:
                served += cg.requests
    if total <= 0:
        return 0.0
    return served / total


def evaluate_state(
    state: ClusterState,
    reference: ClusterState | None = None,
    traced: Mapping[str, TracedApplication] | None = None,
    planning_seconds: float = 0.0,
) -> SchemeMetrics:
    """Compute the full metric bundle for one post-response cluster state."""
    availability, per_app = critical_service_availability(state)
    return SchemeMetrics(
        critical_service_availability=availability,
        normalized_revenue=normalized_revenue(state, reference),
        fairness=fairness_deviation(state),
        utilization=cluster_utilization(state),
        requests_served_fraction=(
            requests_served_fraction(state, traced) if traced is not None else None
        ),
        planning_seconds=planning_seconds,
        per_app_availability=per_app,
    )
