"""Failure and recovery events used by simulators and the Phoenix agent."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """A set of nodes failing at a point in (simulated) time."""

    time: float
    nodes: tuple[str, ...]
    cause: str = "unspecified"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        object.__setattr__(self, "nodes", tuple(self.nodes))


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """A set of nodes recovering at a point in (simulated) time."""

    time: float
    nodes: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        object.__setattr__(self, "nodes", tuple(self.nodes))


@dataclass
class EventTimeline:
    """An ordered sequence of failure/recovery events.

    Used by the Figure 6 timeline experiment (fail at t1, recover 10 minutes
    later) and by the Figure 8a capacity-replay experiment.
    """

    events: list[FailureEvent | RecoveryEvent] = field(default_factory=list)

    def add(self, event: FailureEvent | RecoveryEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)

    def between(self, start: float, end: float) -> Sequence[FailureEvent | RecoveryEvent]:
        """Events with ``start < time <= end`` (simulation-step semantics)."""
        return [e for e in self.events if start < e.time <= end]

    def horizon(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
