"""Cluster substrate: nodes, microservices, applications and cluster state."""

from repro.cluster.application import Application, DependencyGraphError
from repro.cluster.events import EventTimeline, FailureEvent, RecoveryEvent
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources, total
from repro.cluster.state import (
    ClusterState,
    DirtySet,
    ReplicaId,
    SchedulingError,
    build_uniform_cluster,
)

__all__ = [
    "Application",
    "DependencyGraphError",
    "EventTimeline",
    "FailureEvent",
    "RecoveryEvent",
    "Microservice",
    "Node",
    "Resources",
    "total",
    "ClusterState",
    "DirtySet",
    "ReplicaId",
    "SchedulingError",
    "build_uniform_cluster",
]
