"""Resource vectors used throughout the cluster substrate.

The paper models microservice resource requirements as scalar CPU demands
(millicores on Kubernetes, abstract units in AdaptLab).  We keep a small
two-dimensional vector (cpu, memory) so that the bin-packing heuristics and
LP formulations exercise multi-dimensional packing, while still supporting
the scalar view the paper's plots use (``dominant`` / ``cpu``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Resources:
    """An immutable (cpu, memory) resource vector.

    Units are abstract: the CloudLab experiments use CPU millicores and MiB,
    while AdaptLab uses normalized units derived from calls-per-minute.
    Arithmetic is element-wise and comparisons are conjunctive, which is the
    semantics bin packing needs ("fits" means every dimension fits).
    """

    cpu: float = 0.0
    memory: float = 0.0

    #: Tolerance for floating-point round-off when accumulating resources.
    _EPSILON = 1e-6

    def __post_init__(self) -> None:
        if self.cpu < -self._EPSILON or self.memory < -self._EPSILON:
            raise ValueError(f"resources must be non-negative, got {self}")
        # Clamp round-off noise so repeated add/subtract cycles stay at zero.
        if self.cpu < 0:
            object.__setattr__(self, "cpu", 0.0)
        if self.memory < 0:
            object.__setattr__(self, "memory", 0.0)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu + other.cpu, self.memory + other.memory)

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu - other.cpu, self.memory - other.memory)

    def __mul__(self, factor: float) -> "Resources":
        return Resources(self.cpu * factor, self.memory * factor)

    __rmul__ = __mul__

    # -- comparisons --------------------------------------------------------
    def fits_within(self, capacity: "Resources") -> bool:
        """Return True if this demand fits inside ``capacity`` on every axis."""
        return self.cpu <= capacity.cpu + 1e-9 and self.memory <= capacity.memory + 1e-9

    def is_zero(self) -> bool:
        return self.cpu == 0.0 and self.memory == 0.0

    # -- scalar views -------------------------------------------------------
    @property
    def dominant(self) -> float:
        """The dominant (largest) dimension, used for scalar reporting."""
        return max(self.cpu, self.memory)

    def scalar(self) -> float:
        """Scalar view used by the paper's plots (CPU units)."""
        return self.cpu

    @staticmethod
    def zero() -> "Resources":
        return Resources(0.0, 0.0)

    @staticmethod
    def cpu_only(cpu: float) -> "Resources":
        """Convenience constructor for the AdaptLab scalar resource model."""
        return Resources(cpu=cpu, memory=0.0)


def total(resource_list) -> Resources:
    """Sum an iterable of :class:`Resources`."""
    acc = Resources.zero()
    for item in resource_list:
        acc = acc + item
    return acc
