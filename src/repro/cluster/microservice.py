"""Microservice specification.

A microservice is the unit of diagonal scaling: the planner decides whether
each microservice is activated, and the scheduler decides where its replicas
run.  Criticality tags live here (``criticality``), matching the paper's
container-level tagging interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import Resources
from repro.criticality import HIGHEST_CRITICALITY, CriticalityTag


@dataclass
class Microservice:
    """A single microservice (one container image, possibly many replicas).

    Attributes
    ----------
    name:
        Unique within its application (e.g. ``"spell-check"``).
    resources:
        Resource demand of **one replica**.
    criticality:
        The criticality tag (C1 = most critical).  Untagged microservices
        default to the highest criticality, per §5 "Partial Tagging".
    replicas:
        Desired replica count.  The planner treats a microservice as active
        only if all replicas can be placed (Appendix D).
    stateful:
        Stateful services are never diagonally scaled (the paper's scope is
        stateless workloads); Phoenix treats them as pinned.
    metadata:
        Free-form annotations (e.g. the request types the service handles).
    """

    name: str
    resources: Resources
    criticality: CriticalityTag = field(default_factory=lambda: HIGHEST_CRITICALITY)
    replicas: int = 1
    stateful: bool = False
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("microservice name must be non-empty")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if not isinstance(self.criticality, CriticalityTag):
            self.criticality = CriticalityTag.parse(self.criticality)

    @property
    def total_resources(self) -> Resources:
        """Aggregate demand across all replicas."""
        return self.resources * self.replicas

    def __hash__(self) -> int:
        return hash(self.name)
