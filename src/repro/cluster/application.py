"""Application model: a set of microservices plus an optional dependency graph.

The dependency graph (DG) is a ``networkx.DiGraph`` whose nodes are
microservice names and whose edges point from caller to callee (upstream to
downstream), matching the paper's Alibaba-derived application DGs.  The DG is
optional — Phoenix's planner falls back to pure criticality ordering when it
is absent (requirement R5, broad deployability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.cluster.microservice import Microservice
from repro.cluster.resources import Resources, total
from repro.criticality import CriticalityTag


class DependencyGraphError(ValueError):
    """Raised when a supplied dependency graph is inconsistent with the app."""


@dataclass
class Application:
    """A microservice-based application registered with Phoenix.

    Attributes
    ----------
    name:
        Globally unique application name (e.g. ``"overleaf0"``).
    microservices:
        Mapping from microservice name to :class:`Microservice`.
    dependency_graph:
        Optional caller -> callee DiGraph over microservice names.
    price_per_unit:
        The application's willingness-to-pay per unit resource, used by the
        revenue-based operator objective (LPCost / PhoenixCost).
    critical_service:
        Name of the business-critical service (e.g. ``"document-edits"``)
        whose sustained throughput defines the application's steady state
        (Table 4 in the paper).  Purely informational for metrics.
    """

    name: str
    microservices: dict[str, Microservice] = field(default_factory=dict)
    dependency_graph: nx.DiGraph | None = None
    price_per_unit: float = 1.0
    critical_service: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        if self.price_per_unit <= 0:
            raise ValueError("price_per_unit must be positive")
        if self.dependency_graph is not None:
            self._validate_graph(self.dependency_graph)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_microservices(
        cls,
        name: str,
        microservices: Iterable[Microservice],
        dependency_edges: Iterable[tuple[str, str]] | None = None,
        price_per_unit: float = 1.0,
        critical_service: str | None = None,
    ) -> "Application":
        """Build an application from a list of microservices and DG edges."""
        ms_map = {}
        for ms in microservices:
            if ms.name in ms_map:
                raise ValueError(f"duplicate microservice {ms.name!r} in app {name!r}")
            ms_map[ms.name] = ms
        graph = None
        if dependency_edges is not None:
            graph = nx.DiGraph()
            graph.add_nodes_from(ms_map)
            graph.add_edges_from(dependency_edges)
        return cls(
            name=name,
            microservices=ms_map,
            dependency_graph=graph,
            price_per_unit=price_per_unit,
            critical_service=critical_service,
        )

    def _validate_graph(self, graph: nx.DiGraph) -> None:
        unknown = set(graph.nodes) - set(self.microservices)
        if unknown:
            raise DependencyGraphError(
                f"dependency graph of {self.name!r} references unknown microservices: {sorted(unknown)}"
            )
        missing = set(self.microservices) - set(graph.nodes)
        if missing:
            # Tolerate microservices absent from the DG by adding them as
            # isolated nodes; they are then root nodes for the planner.
            graph.add_nodes_from(missing)

    # -- queries -------------------------------------------------------------
    def __iter__(self) -> Iterator[Microservice]:
        return iter(self.microservices.values())

    def __len__(self) -> int:
        return len(self.microservices)

    def __contains__(self, name: str) -> bool:
        return name in self.microservices

    def get(self, name: str) -> Microservice:
        return self.microservices[name]

    @property
    def has_dependency_graph(self) -> bool:
        return self.dependency_graph is not None

    def total_demand(self) -> Resources:
        """Aggregate resource demand of the whole application."""
        return total(ms.total_resources for ms in self)

    def demand_by_criticality(self) -> dict[CriticalityTag, Resources]:
        """Aggregate demand per criticality level (used by Figure 9)."""
        result: dict[CriticalityTag, Resources] = {}
        for ms in self:
            current = result.get(ms.criticality, Resources.zero())
            result[ms.criticality] = current + ms.total_resources
        return result

    def source_microservices(self) -> list[str]:
        """Entry microservices: no inbound edges in the DG.

        When no DG exists, every microservice is treated as a source.
        """
        if self.dependency_graph is None:
            return sorted(self.microservices)
        return sorted(n for n in self.dependency_graph.nodes if self.dependency_graph.in_degree(n) == 0)

    def predecessors(self, name: str) -> list[str]:
        """Upstream callers of ``name`` (empty when no DG or a source node)."""
        if self.dependency_graph is None or name not in self.dependency_graph:
            return []
        return sorted(self.dependency_graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        if self.dependency_graph is None or name not in self.dependency_graph:
            return []
        return sorted(self.dependency_graph.successors(name))

    def criticality_of(self, name: str) -> CriticalityTag:
        return self.microservices[name].criticality

    def tags(self) -> dict[str, CriticalityTag]:
        return {name: ms.criticality for name, ms in self.microservices.items()}

    def microservices_at_or_above(self, level: CriticalityTag) -> list[str]:
        """Microservices whose criticality is at least as important as ``level``."""
        return sorted(
            name for name, ms in self.microservices.items() if ms.criticality <= level
        )

    def with_tags(self, tags: Mapping[str, CriticalityTag]) -> "Application":
        """Return a copy of this application with re-assigned criticality tags."""
        new_ms = []
        for name, ms in self.microservices.items():
            new_ms.append(
                Microservice(
                    name=ms.name,
                    resources=ms.resources,
                    criticality=tags.get(name, ms.criticality),
                    replicas=ms.replicas,
                    stateful=ms.stateful,
                    metadata=dict(ms.metadata),
                )
            )
        graph = self.dependency_graph.copy() if self.dependency_graph is not None else None
        return Application(
            name=self.name,
            microservices={ms.name: ms for ms in new_ms},
            dependency_graph=graph,
            price_per_unit=self.price_per_unit,
            critical_service=self.critical_service,
        )
