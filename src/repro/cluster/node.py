"""Cluster node model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import Resources


@dataclass
class Node:
    """A physical (or virtual) server in the cluster.

    A node has a capacity, a health flag (``failed``) and an optional set of
    labels.  Scheduling state (which microservices run here) lives in
    :class:`repro.cluster.state.ClusterState`, not on the node itself, so
    that planners can work on copies of the assignment without copying nodes.
    """

    name: str
    capacity: Resources
    failed: bool = False
    labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")

    @property
    def is_healthy(self) -> bool:
        return not self.failed

    def fail(self) -> None:
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def __hash__(self) -> int:  # nodes are identified by name
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.name == other.name
