"""Cluster state: nodes, applications and the microservice -> node assignment.

:class:`ClusterState` is the substrate both Phoenix and the AdaptLab
simulator operate on.  The Phoenix planner and scheduler always work on a
*copy* of the state (``state.copy()``) and hand back a plan; only the agent
applies changes to the live state, mirroring the paper's separation between
the packing module (dry-run) and the agent (execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources


@dataclass(frozen=True, slots=True)
class ReplicaId:
    """Identifies a single replica of a microservice of an application."""

    app: str
    microservice: str
    replica: int = 0

    def __str__(self) -> str:
        return f"{self.app}/{self.microservice}[{self.replica}]"


class SchedulingError(RuntimeError):
    """Raised when an assignment would violate capacity or consistency."""


class ClusterState:
    """Mutable cluster state shared by planners, schedulers and simulators."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        applications: Iterable[Application] = (),
    ) -> None:
        self._nodes: dict[str, Node] = {}
        self._apps: dict[str, Application] = {}
        #: replica -> node name
        self._assignments: dict[ReplicaId, str] = {}
        #: node name -> used resources (cache, kept consistent by mutators)
        self._used: dict[str, Resources] = {}
        #: node name -> replicas on it (reverse index, kept by the mutators)
        self._by_node: dict[str, set[ReplicaId]] = {}
        for node in nodes:
            self.add_node(node)
        for app in applications:
            self.add_application(app)

    # -- registration --------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._used[node.name] = Resources.zero()
        self._by_node[node.name] = set()

    def add_application(self, app: Application) -> None:
        if app.name in self._apps:
            raise ValueError(f"duplicate application {app.name!r}")
        self._apps[app.name] = app

    def remove_application(self, name: str) -> None:
        if name not in self._apps:
            raise KeyError(name)
        for replica in [r for r in self._assignments if r.app == name]:
            self.unassign(replica)
        del self._apps[name]

    # -- accessors ------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, Node]:
        return self._nodes

    @property
    def applications(self) -> dict[str, Application]:
        return self._apps

    @property
    def assignments(self) -> dict[ReplicaId, str]:
        return dict(self._assignments)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def application(self, name: str) -> Application:
        return self._apps[name]

    def microservice(self, app: str, name: str) -> Microservice:
        return self._apps[app].get(name)

    def healthy_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.is_healthy]

    def failed_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.failed]

    def iter_replicas(self, app: str, microservice: str) -> Iterator[ReplicaId]:
        count = self._apps[app].get(microservice).replicas
        for index in range(count):
            yield ReplicaId(app, microservice, index)

    # -- capacity accounting ---------------------------------------------------
    def used_on(self, node_name: str) -> Resources:
        return self._used[node_name]

    def free_on(self, node_name: str) -> Resources:
        node = self._nodes[node_name]
        if node.failed:
            return Resources.zero()
        return node.capacity - self._used[node_name]

    def total_capacity(self, healthy_only: bool = True) -> Resources:
        acc = Resources.zero()
        for node in self._nodes.values():
            if healthy_only and node.failed:
                continue
            acc = acc + node.capacity
        return acc

    def total_used(self, healthy_only: bool = True) -> Resources:
        acc = Resources.zero()
        for name, used in self._used.items():
            if healthy_only and self._nodes[name].failed:
                continue
            acc = acc + used
        return acc

    def utilization(self) -> float:
        """Fraction of healthy capacity currently in use (CPU view)."""
        capacity = self.total_capacity().cpu
        if capacity <= 0:
            return 0.0
        return self.total_used().cpu / capacity

    # -- assignment mutators ---------------------------------------------------
    def assign(self, replica: ReplicaId, node_name: str, *, enforce_capacity: bool = True) -> None:
        """Place ``replica`` on ``node_name``.

        With ``enforce_capacity`` (the default) placement that would exceed
        the node's capacity raises :class:`SchedulingError`; Phoenix's packing
        heuristic relies on this to detect infeasible placements.
        """
        if replica.app not in self._apps:
            raise SchedulingError(f"unknown application {replica.app!r}")
        if replica.microservice not in self._apps[replica.app]:
            raise SchedulingError(f"unknown microservice {replica.microservice!r}")
        if node_name not in self._nodes:
            raise SchedulingError(f"unknown node {node_name!r}")
        node = self._nodes[node_name]
        if node.failed:
            raise SchedulingError(f"cannot assign {replica} to failed node {node_name!r}")
        if replica in self._assignments:
            raise SchedulingError(f"{replica} is already assigned")
        demand = self._apps[replica.app].get(replica.microservice).resources
        if enforce_capacity and not (self._used[node_name] + demand).fits_within(node.capacity):
            raise SchedulingError(
                f"{replica} ({demand}) does not fit on {node_name!r} "
                f"(used={self._used[node_name]}, capacity={node.capacity})"
            )
        self._assignments[replica] = node_name
        self._used[node_name] = self._used[node_name] + demand
        self._by_node[node_name].add(replica)

    def unassign(self, replica: ReplicaId) -> str:
        """Remove ``replica`` from its node; returns the node it ran on."""
        if replica not in self._assignments:
            raise SchedulingError(f"{replica} is not assigned")
        node_name = self._assignments.pop(replica)
        demand = self._apps[replica.app].get(replica.microservice).resources
        self._used[node_name] = self._used[node_name] - demand
        self._by_node[node_name].discard(replica)
        return node_name

    def node_of(self, replica: ReplicaId) -> str | None:
        return self._assignments.get(replica)

    def replicas_on(self, node_name: str) -> list[ReplicaId]:
        return sorted(self._by_node.get(node_name, ()), key=lambda r: (r.app, r.microservice, r.replica))

    # -- microservice activity -------------------------------------------------
    def running_replica_counts(self) -> dict[tuple[str, str], int]:
        """Replicas per (app, microservice) assigned to healthy nodes.

        Single pass over the assignment map; metrics and baselines that need
        the activity of many microservices should use this (or
        :meth:`active_microservices`) instead of calling :meth:`is_active`
        in a loop.
        """
        counts: dict[tuple[str, str], int] = {}
        for replica, node_name in self._assignments.items():
            if self._nodes[node_name].is_healthy:
                key = (replica.app, replica.microservice)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def running_replicas(self, app: str, microservice: str) -> int:
        """Count replicas of a microservice that are assigned to healthy nodes."""
        count = 0
        for replica, node_name in self._assignments.items():
            if (
                replica.app == app
                and replica.microservice == microservice
                and self._nodes[node_name].is_healthy
            ):
                count += 1
        return count

    def is_active(self, app: str, microservice: str) -> bool:
        """A microservice is active when **all** replicas run on healthy nodes."""
        ms = self._apps[app].get(microservice)
        return self.running_replicas(app, microservice) >= ms.replicas

    def active_microservices(self, app: str | None = None) -> dict[str, set[str]]:
        """Mapping of application -> set of fully active microservices."""
        apps = [app] if app is not None else list(self._apps)
        counts = self.running_replica_counts()
        return {
            a: {
                name
                for name, ms in self._apps[a].microservices.items()
                if counts.get((a, name), 0) >= ms.replicas
            }
            for a in apps
        }

    def app_resource_usage(self) -> dict[str, float]:
        """CPU usage per application on healthy nodes (for fairness metrics)."""
        usage: dict[str, float] = {a: 0.0 for a in self._apps}
        for replica, node_name in self._assignments.items():
            if not self._nodes[node_name].is_healthy:
                continue
            demand = self._apps[replica.app].get(replica.microservice).resources
            usage[replica.app] += demand.cpu
        return usage

    # -- failure handling --------------------------------------------------------
    def fail_nodes(self, names: Iterable[str]) -> list[ReplicaId]:
        """Mark nodes failed and return the replicas that were impacted.

        Impacted replicas stay in the assignment map (they are "down" but the
        desired state still references them); callers decide whether to evict
        them.  This matches Kubernetes semantics where pods on a NotReady
        node linger until evicted.
        """
        impacted: list[ReplicaId] = []
        for name in names:
            node = self._nodes[name]
            if node.failed:
                continue
            node.fail()
            impacted.extend(self.replicas_on(name))
        return impacted

    def recover_nodes(self, names: Iterable[str]) -> None:
        for name in names:
            self._nodes[name].recover()

    def evict_from_failed_nodes(self) -> list[ReplicaId]:
        """Unassign every replica currently placed on a failed node."""
        evicted = []
        for node in self.failed_nodes():
            for replica in self.replicas_on(node.name):
                self.unassign(replica)
                evicted.append(replica)
        return evicted

    # -- copying -------------------------------------------------------------------
    def copy(self) -> "ClusterState":
        """Deep-enough copy: nodes are copied, applications are shared.

        Applications are immutable from the scheduler's point of view, so
        sharing them keeps copies cheap even for 100k-node clusters.
        """
        clone = ClusterState()
        for node in self._nodes.values():
            clone.add_node(Node(node.name, node.capacity, node.failed, dict(node.labels)))
        for app in self._apps.values():
            clone.add_application(app)
        clone._assignments = dict(self._assignments)
        clone._used = dict(self._used)
        clone._by_node = {name: set(replicas) for name, replicas in self._by_node.items()}
        return clone

    # -- misc ------------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Small dict used in logs and tests."""
        return {
            "nodes": len(self._nodes),
            "failed_nodes": len(self.failed_nodes()),
            "applications": len(self._apps),
            "assigned_replicas": len(self._assignments),
            "utilization": round(self.utilization(), 4),
        }

    def __repr__(self) -> str:
        return f"ClusterState({self.summary()})"


def build_uniform_cluster(
    node_count: int,
    node_capacity: Resources | float,
    applications: Iterable[Application] = (),
    node_prefix: str = "node",
) -> ClusterState:
    """Convenience builder for a homogeneous cluster (AdaptLab default)."""
    if isinstance(node_capacity, (int, float)):
        node_capacity = Resources(cpu=float(node_capacity), memory=float(node_capacity))
    nodes = [Node(f"{node_prefix}-{i}", node_capacity) for i in range(node_count)]
    return ClusterState(nodes=nodes, applications=applications)
