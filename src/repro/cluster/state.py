"""Cluster state: nodes, applications and the microservice -> node assignment.

:class:`ClusterState` is the substrate both Phoenix and the AdaptLab
simulator operate on.  The Phoenix planner and scheduler always work on a
*copy* of the state (``state.copy()``) and hand back a plan; only the agent
applies changes to the live state, mirroring the paper's separation between
the packing module (dry-run) and the agent (execution).

The state keeps several incremental indexes so that the planner/packer hot
path stays flat as clusters grow to the paper's 100k-node scale:

* per-node used resources (float pairs, no ``Resources`` churn in mutators),
* a node -> replicas reverse index,
* a per-(app, microservice) running-replica counter over healthy nodes,
  making :meth:`running_replicas` / :meth:`is_active` O(1),
* cached aggregate capacity/used totals, maintained by :meth:`assign`,
  :meth:`unassign`, :meth:`fail_nodes` and :meth:`recover_nodes`, making
  :meth:`total_capacity` / :meth:`total_used` / :meth:`utilization` O(1).
  Incremental +=/-= maintenance can differ from a fresh sum by float
  round-off (last-ulp); consumers already use epsilon comparisons, and the
  golden-equivalence suite pins optimized and reference pipelines to the
  same values by construction.

Node health must only be changed through :meth:`fail_nodes` /
:meth:`recover_nodes` (never via ``node.fail()`` directly on a registered
node) so the cached aggregates, the failed-node registry and the dirty
tracking stay consistent.

Dirty tracking: every mutation records which nodes and applications it
affected (plus a monotonically increasing generation counter).
:meth:`drain_dirty` hands the accumulated :class:`DirtySet` to a consumer —
the incremental scheduler in :mod:`repro.core.incremental` — and resets the
accumulator.  Tracking is a few set-adds per mutation, cheap enough to stay
always-on.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping, NamedTuple

from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources


def _clamped_free(cpu: float, memory: float) -> tuple[float, float]:
    """Negative-free rounding guard shared by every free-capacity computation.

    Routes through the :class:`Resources` constructor so the clamp (and the
    beyond-tolerance ValueError) stay byte-identical to ``free_on``'s fields.
    """
    free = Resources(cpu, memory)
    return (free.cpu, free.memory)


class ReplicaId(NamedTuple):
    """Identifies a single replica of a microservice of an application.

    A named tuple rather than a dataclass: replica ids are hashed on every
    assignment-map operation and sorted in bulk on the hot path, and tuples
    get C-speed hashing, equality and field-order comparison for free.
    """

    app: str
    microservice: str
    replica: int = 0

    def __str__(self) -> str:
        return f"{self.app}/{self.microservice}[{self.replica}]"


class SchedulingError(RuntimeError):
    """Raised when an assignment would violate capacity or consistency."""


@dataclass(frozen=True, slots=True)
class DirtySet:
    """What changed on a :class:`ClusterState` between two drains.

    ``nodes`` are nodes whose usage, assignments or health changed; ``apps``
    are applications whose placement changed.  ``structural`` flags changes
    that invalidate any cached view wholesale (nodes or applications added
    or removed).  ``base_generation`` is the state's generation at the
    previous drain and ``end_generation`` the generation at this drain, so a
    consumer can detect that another consumer drained in between (its own
    remembered end-generation will not match the next drain's base).
    """

    nodes: frozenset[str]
    apps: frozenset[str]
    structural: bool
    base_generation: int
    end_generation: int

    def __bool__(self) -> bool:
        return bool(self.nodes) or bool(self.apps) or self.structural


class ClusterState:
    """Mutable cluster state shared by planners, schedulers and simulators."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        applications: Iterable[Application] = (),
    ) -> None:
        self._nodes: dict[str, Node] = {}
        self._apps: dict[str, Application] = {}
        #: replica -> node name
        self._assignments: dict[ReplicaId, str] = {}
        #: node name -> (used cpu, used memory); kept consistent by mutators
        self._used: dict[str, tuple[float, float]] = {}
        #: node name -> replicas on it (reverse index, kept by the mutators).
        #: Sets may be shared with copies; ``_by_node_owned`` tracks which
        #: sets this instance owns (None = owns all, the fresh-state default).
        self._by_node: dict[str, set[ReplicaId]] = {}
        self._by_node_owned: set[str] | None = None
        #: (app, microservice) -> replicas assigned to healthy nodes
        self._running: dict[tuple[str, str], int] = {}
        #: (app, microservice) -> per-replica Resources (lookup cache)
        self._demand: dict[tuple[str, str], Resources] = {}
        #: (app, microservice) -> ms.replicas (lookup cache, like _demand)
        self._replica_target: dict[tuple[str, str], int] = {}
        #: app -> microservice names with running < replicas (the "deficit"
        #: index).  Maintained O(1) per mutation; lets the packer skip
        #: fully-running containers and active_microservices() run on set
        #: arithmetic instead of per-microservice counter lookups.
        self._deficit: dict[str, set[str]] = {}
        #: app name -> (Application, all ms names); identity-validated cache
        self._ms_names: dict[str, tuple[Application, set[str]]] = {}
        # Cached aggregates (cpu, memory), maintained incrementally.
        self._cap_all = [0.0, 0.0]
        self._cap_healthy = [0.0, 0.0]
        self._used_all = [0.0, 0.0]
        self._used_healthy = [0.0, 0.0]
        #: currently failed nodes, in failure order (dict used as ordered set)
        self._failed: dict[str, None] = {}
        # Dirty tracking (see module docstring / DirtySet).
        self._generation = 0
        self._dirty_nodes: set[str] = set()
        self._dirty_apps: set[str] = set()
        self._dirty_structural = False
        self._dirty_base = 0
        for node in nodes:
            self.add_node(node)
        for app in applications:
            self.add_application(app)

    # -- dirty tracking ------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped by every tracked mutator)."""
        return self._generation

    def drain_dirty(self) -> DirtySet:
        """Return everything dirtied since the last drain, and reset.

        Draining is destructive: the accumulator restarts empty with
        ``base_generation`` set to the current generation.  A consumer that
        remembered the previous drain's ``end_generation`` can therefore
        detect a competing consumer (mismatching ``base_generation``) and
        fall back to a full rebuild.
        """
        drained = DirtySet(
            nodes=frozenset(self._dirty_nodes),
            apps=frozenset(self._dirty_apps),
            structural=self._dirty_structural,
            base_generation=self._dirty_base,
            end_generation=self._generation,
        )
        self._dirty_nodes = set()
        self._dirty_apps = set()
        self._dirty_structural = False
        self._dirty_base = self._generation
        return drained

    def peek_dirty(self) -> DirtySet:
        """The accumulated dirty set without resetting it (for tooling)."""
        return DirtySet(
            nodes=frozenset(self._dirty_nodes),
            apps=frozenset(self._dirty_apps),
            structural=self._dirty_structural,
            base_generation=self._dirty_base,
            end_generation=self._generation,
        )

    # -- registration --------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._used[node.name] = (0.0, 0.0)
        self._by_node[node.name] = set()
        if self._by_node_owned is not None:
            self._by_node_owned.add(node.name)
        capacity = node.capacity
        self._cap_all[0] += capacity.cpu
        self._cap_all[1] += capacity.memory
        if not node.failed:
            self._cap_healthy[0] += capacity.cpu
            self._cap_healthy[1] += capacity.memory
        else:
            self._failed[node.name] = None
        self._generation += 1
        self._dirty_structural = True
        self._dirty_nodes.add(node.name)

    def _owned_replicas(self, node_name: str) -> set[ReplicaId]:
        """The node's replica set, copied on first write after a copy()."""
        owned = self._by_node_owned
        if owned is None or node_name in owned:
            return self._by_node[node_name]
        replicas = set(self._by_node[node_name])
        self._by_node[node_name] = replicas
        owned.add(node_name)
        return replicas

    def add_application(self, app: Application) -> None:
        if app.name in self._apps:
            raise ValueError(f"duplicate application {app.name!r}")
        self._apps[app.name] = app
        lacking = {name for name, ms in app.microservices.items() if ms.replicas > 0}
        if lacking:
            self._deficit[app.name] = lacking
        self._generation += 1
        self._dirty_structural = True
        self._dirty_apps.add(app.name)

    def remove_application(self, name: str) -> None:
        if name not in self._apps:
            raise KeyError(name)
        for replica in [r for r in self._assignments if r.app == name]:
            self.unassign(replica)
        del self._apps[name]
        self._demand = {k: v for k, v in self._demand.items() if k[0] != name}
        self._running = {k: v for k, v in self._running.items() if k[0] != name}
        self._replica_target = {
            k: v for k, v in self._replica_target.items() if k[0] != name
        }
        self._deficit.pop(name, None)
        self._ms_names.pop(name, None)
        self._generation += 1
        self._dirty_structural = True
        self._dirty_apps.add(name)

    def _update_deficit(self, key: tuple[str, str]) -> None:
        """Re-derive one microservice's deficit membership from its count."""
        target = self._replica_target.get(key)
        if target is None:
            target = self._apps[key[0]].get(key[1]).replicas
            self._replica_target[key] = target
        bucket = self._deficit.get(key[0])
        if self._running.get(key, 0) >= target:
            if bucket is not None:
                bucket.discard(key[1])
        elif bucket is None:
            self._deficit[key[0]] = {key[1]}
        else:
            bucket.add(key[1])

    # -- accessors ------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, Node]:
        return self._nodes

    @property
    def applications(self) -> dict[str, Application]:
        return self._apps

    @property
    def assignments(self) -> Mapping[ReplicaId, str]:
        """Read-only live view of replica -> node (no copy; snapshot with
        ``dict(state.assignments)`` before mutating the state mid-iteration)."""
        return MappingProxyType(self._assignments)

    def assignments_snapshot(self) -> dict[ReplicaId, str]:
        """A mutable copy of the assignment map (C-speed dict clone)."""
        return dict(self._assignments)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def application(self, name: str) -> Application:
        return self._apps[name]

    def microservice(self, app: str, name: str) -> Microservice:
        return self._apps[app].get(name)

    def demand_of(self, app: str, microservice: str) -> Resources:
        """Per-replica resource demand of a microservice (cached lookup)."""
        key = (app, microservice)
        demand = self._demand.get(key)
        if demand is None:
            demand = self._apps[app].get(microservice).resources
            self._demand[key] = demand
        return demand

    def healthy_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if not n.failed]

    def failed_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.failed]

    @property
    def failed_count(self) -> int:
        """Number of currently failed nodes — O(1) via the failed registry."""
        return len(self._failed)

    def failed_names(self) -> set[str]:
        """Names of currently failed nodes — O(failed), not O(cluster).

        Backed by the registry the health mutators maintain; callers get a
        fresh set they may keep or mutate.
        """
        return set(self._failed)

    def failure_order(self) -> tuple[str, ...]:
        """Currently failed node names, in the order they failed.

        The registry order drives :meth:`evict_from_failed_nodes` and hence
        the byte order of every downstream schedule — consumers replicating
        this state across a process boundary must reproduce it exactly, so
        they diff against this tuple rather than :meth:`failed_names`.
        """
        return tuple(self._failed)

    def health_aggregates(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """Bit-exact ``((healthy cap cpu, mem), (healthy used cpu, mem))``.

        These two accumulators are the only floats :meth:`fail_nodes` /
        :meth:`recover_nodes` touch, and float addition is not associative:
        two states that failed and recovered the same node *sets* through
        different call sequences can disagree in the last bit.  A replica of
        this state (a fleet worker shard applying a health delta) therefore
        overwrites its accumulators with these values after the diff — see
        :meth:`set_health_aggregates`.
        """
        return (
            (self._cap_healthy[0], self._cap_healthy[1]),
            (self._used_healthy[0], self._used_healthy[1]),
        )

    def set_health_aggregates(
        self,
        capacity: tuple[float, float],
        used: tuple[float, float],
    ) -> None:
        """Overwrite the healthy-capacity/usage accumulators bit-for-bit.

        Only meaningful right after replaying a health delta whose source
        shipped :meth:`health_aggregates`; any other use desynchronizes the
        accumulators from the node registry.
        """
        self._cap_healthy[0], self._cap_healthy[1] = capacity
        self._used_healthy[0], self._used_healthy[1] = used

    def iter_replicas(self, app: str, microservice: str) -> Iterator[ReplicaId]:
        count = self._apps[app].get(microservice).replicas
        for index in range(count):
            yield ReplicaId(app, microservice, index)

    # -- capacity accounting ---------------------------------------------------
    def used_on(self, node_name: str) -> Resources:
        cpu, memory = self._used[node_name]
        return Resources(cpu, memory)

    def free_on(self, node_name: str) -> Resources:
        node = self._nodes[node_name]
        if node.failed:
            return Resources.zero()
        capacity = node.capacity
        cpu, memory = self._used[node_name]
        return Resources(capacity.cpu - cpu, capacity.memory - memory)

    def free_pair(self, node_name: str) -> tuple[float, float]:
        """``free_on`` as a plain (cpu, memory) tuple — no object churn.

        Applies the same rounding guard as the :class:`Resources`
        constructor, so the values are identical to ``free_on``'s fields.
        """
        node = self._nodes[node_name]
        if node.failed:
            return (0.0, 0.0)
        capacity = node.capacity
        used_cpu, used_mem = self._used[node_name]
        cpu = capacity.cpu - used_cpu
        memory = capacity.memory - used_mem
        if cpu < 0.0 or memory < 0.0:
            return _clamped_free(cpu, memory)
        return (cpu, memory)

    def free_table(self) -> list[tuple[float, str, float]]:
        """(free cpu, name, free memory) for every healthy node, in one pass."""
        table: list[tuple[float, str, float]] = []
        used = self._used
        for name, node in self._nodes.items():
            if node.failed:
                continue
            capacity = node.capacity
            used_cpu, used_mem = used[name]
            cpu = capacity.cpu - used_cpu
            memory = capacity.memory - used_mem
            if cpu < 0.0 or memory < 0.0:
                cpu, memory = _clamped_free(cpu, memory)
            table.append((cpu, name, memory))
        return table

    def total_capacity(self, healthy_only: bool = True) -> Resources:
        acc = self._cap_healthy if healthy_only else self._cap_all
        return Resources(acc[0], acc[1])

    def total_used(self, healthy_only: bool = True) -> Resources:
        acc = self._used_healthy if healthy_only else self._used_all
        return Resources(acc[0], acc[1])

    def utilization(self) -> float:
        """Fraction of healthy capacity currently in use (CPU view)."""
        capacity = self._cap_healthy[0]
        if capacity <= 0:
            return 0.0
        return self._used_healthy[0] / capacity

    # -- assignment mutators ---------------------------------------------------
    def assign(self, replica: ReplicaId, node_name: str, *, enforce_capacity: bool = True) -> None:
        """Place ``replica`` on ``node_name``.

        With ``enforce_capacity`` (the default) placement that would exceed
        the node's capacity raises :class:`SchedulingError`; Phoenix's packing
        heuristic relies on this to detect infeasible placements.
        """
        app = self._apps.get(replica.app)
        if app is None:
            raise SchedulingError(f"unknown application {replica.app!r}")
        if replica.microservice not in app:
            raise SchedulingError(f"unknown microservice {replica.microservice!r}")
        node = self._nodes.get(node_name)
        if node is None:
            raise SchedulingError(f"unknown node {node_name!r}")
        if node.failed:
            raise SchedulingError(f"cannot assign {replica} to failed node {node_name!r}")
        if replica in self._assignments:
            raise SchedulingError(f"{replica} is already assigned")
        key = (replica.app, replica.microservice)
        demand = self._demand.get(key)
        if demand is None:
            demand = app.get(replica.microservice).resources
            self._demand[key] = demand
        demand_cpu = demand.cpu
        demand_mem = demand.memory
        used_cpu, used_mem = self._used[node_name]
        new_cpu = used_cpu + demand_cpu
        new_mem = used_mem + demand_mem
        capacity = node.capacity
        if enforce_capacity and not (new_cpu <= capacity.cpu + 1e-9 and new_mem <= capacity.memory + 1e-9):
            raise SchedulingError(
                f"{replica} ({demand}) does not fit on {node_name!r} "
                f"(used={Resources(used_cpu, used_mem)}, capacity={capacity})"
            )
        self._assignments[replica] = node_name
        self._used[node_name] = (new_cpu, new_mem)
        self._owned_replicas(node_name).add(replica)
        running = self._running
        running[key] = running.get(key, 0) + 1
        self._update_deficit(key)
        used_all = self._used_all
        used_all[0] += demand_cpu
        used_all[1] += demand_mem
        used_healthy = self._used_healthy
        used_healthy[0] += demand_cpu
        used_healthy[1] += demand_mem
        self._generation += 1
        self._dirty_nodes.add(node_name)
        self._dirty_apps.add(key[0])

    def unassign(self, replica: ReplicaId) -> str:
        """Remove ``replica`` from its node; returns the node it ran on."""
        node_name = self._assignments.pop(replica, None)
        if node_name is None:
            raise SchedulingError(f"{replica} is not assigned")
        key = (replica.app, replica.microservice)
        demand = self._demand.get(key)
        if demand is None:
            demand = self._apps[replica.app].get(replica.microservice).resources
            self._demand[key] = demand
        demand_cpu = demand.cpu
        demand_mem = demand.memory
        used_cpu, used_mem = self._used[node_name]
        self._used[node_name] = (used_cpu - demand_cpu, used_mem - demand_mem)
        self._owned_replicas(node_name).discard(replica)
        used_all = self._used_all
        used_all[0] -= demand_cpu
        used_all[1] -= demand_mem
        if not self._nodes[node_name].failed:
            used_healthy = self._used_healthy
            used_healthy[0] -= demand_cpu
            used_healthy[1] -= demand_mem
            self._running[key] -= 1
            self._update_deficit(key)
        self._generation += 1
        self._dirty_nodes.add(node_name)
        self._dirty_apps.add(key[0])
        return node_name

    def assign_packed(self, replica: ReplicaId, node_name: str) -> tuple[float, float]:
        """Trusted fast-path assign for the packing hot loop.

        The caller must guarantee what :meth:`assign` verifies: the replica
        is known and unassigned, and the node exists, is healthy and was
        confirmed to fit through the packing node index (which evaluates the
        same fit predicate ``assign`` enforces).  All validation is skipped.
        Returns the node's new free (cpu, memory) pair — identical to a
        subsequent :meth:`free_pair` call — so the caller can re-key its
        node index without a second lookup round.
        """
        key = replica[:2]
        demand = self._demand.get(key)
        if demand is None:
            demand = self._apps[key[0]].get(key[1]).resources
            self._demand[key] = demand
        demand_cpu = demand.cpu
        demand_mem = demand.memory
        used_cpu, used_mem = self._used[node_name]
        new_cpu = used_cpu + demand_cpu
        new_mem = used_mem + demand_mem
        self._used[node_name] = (new_cpu, new_mem)
        self._assignments[replica] = node_name
        self._owned_replicas(node_name).add(replica)
        running = self._running
        running[key] = running.get(key, 0) + 1
        self._update_deficit(key)
        used_all = self._used_all
        used_all[0] += demand_cpu
        used_all[1] += demand_mem
        used_healthy = self._used_healthy
        used_healthy[0] += demand_cpu
        used_healthy[1] += demand_mem
        self._generation += 1
        self._dirty_nodes.add(node_name)
        self._dirty_apps.add(key[0])
        capacity = self._nodes[node_name].capacity
        free_cpu = capacity.cpu - new_cpu
        free_mem = capacity.memory - new_mem
        if free_cpu < 0.0 or free_mem < 0.0:
            return _clamped_free(free_cpu, free_mem)
        return (free_cpu, free_mem)

    def unassign_packed(self, replica: ReplicaId) -> tuple[str, tuple[float, float]]:
        """Trusted fast-path unassign (replica known to run on a healthy node).

        Returns ``(node name, new free pair)``; see :meth:`assign_packed`.
        """
        node_name = self._assignments.pop(replica)
        key = replica[:2]
        demand = self._demand.get(key)
        if demand is None:
            demand = self._apps[key[0]].get(key[1]).resources
            self._demand[key] = demand
        demand_cpu = demand.cpu
        demand_mem = demand.memory
        used_cpu, used_mem = self._used[node_name]
        new_cpu = used_cpu - demand_cpu
        new_mem = used_mem - demand_mem
        self._used[node_name] = (new_cpu, new_mem)
        self._owned_replicas(node_name).discard(replica)
        used_all = self._used_all
        used_all[0] -= demand_cpu
        used_all[1] -= demand_mem
        used_healthy = self._used_healthy
        used_healthy[0] -= demand_cpu
        used_healthy[1] -= demand_mem
        self._running[key] -= 1
        self._update_deficit(key)
        self._generation += 1
        self._dirty_nodes.add(node_name)
        self._dirty_apps.add(key[0])
        capacity = self._nodes[node_name].capacity
        free_cpu = capacity.cpu - new_cpu
        free_mem = capacity.memory - new_mem
        if free_cpu < 0.0 or free_mem < 0.0:
            return node_name, _clamped_free(free_cpu, free_mem)
        return node_name, (free_cpu, free_mem)

    def node_of(self, replica: ReplicaId) -> str | None:
        return self._assignments.get(replica)

    def replicas_on(self, node_name: str) -> list[ReplicaId]:
        # Plain sorted(): named-tuple field order == (app, microservice, replica)
        return sorted(self._by_node.get(node_name, ()))

    def iter_replicas_on(self, node_name: str) -> Iterable[ReplicaId]:
        """Replicas on a node in unspecified order (no sort; hot-path view).

        Do not mutate assignments while iterating; snapshot first if needed.
        """
        return self._by_node.get(node_name, ())

    # -- microservice activity -------------------------------------------------
    def running_replica_counts(self) -> dict[tuple[str, str], int]:
        """Replicas per (app, microservice) assigned to healthy nodes.

        Maintained incrementally by the assignment/failure mutators; only
        positive counts are reported.
        """
        return {key: count for key, count in self._running.items() if count > 0}

    def running_replicas(self, app: str, microservice: str) -> int:
        """Count replicas of a microservice that are assigned to healthy nodes."""
        return self._running.get((app, microservice), 0)

    def running_view(self) -> Mapping[tuple[str, str], int]:
        """Live read-only view of the running-replica counters.

        Counts may include zeros for microservices that no longer run; use
        :meth:`running_replica_counts` for a filtered snapshot.
        """
        return MappingProxyType(self._running)

    def is_active(self, app: str, microservice: str) -> bool:
        """A microservice is active when **all** replicas run on healthy nodes."""
        ms = self._apps[app].get(microservice)
        return self._running.get((app, microservice), 0) >= ms.replicas

    def active_microservices(self, app: str | None = None) -> dict[str, set[str]]:
        """Mapping of application -> set of fully active microservices.

        Derived from the deficit index with one set difference per
        application — O(microservices) set arithmetic rather than a counter
        lookup per microservice, which matters when metrics are evaluated
        every replay step.  The returned sets are fresh (callers may keep
        or mutate them).
        """
        apps = [app] if app is not None else list(self._apps)
        deficit = self._deficit
        cache = self._ms_names
        out: dict[str, set[str]] = {}
        for a in apps:
            application = self._apps[a]
            hit = cache.get(a)
            if hit is None or hit[0] is not application:
                hit = (application, set(application.microservices))
                cache[a] = hit
            lacking = deficit.get(a)
            out[a] = hit[1] - lacking if lacking else set(hit[1])
        return out

    def app_resource_usage(self) -> dict[str, float]:
        """CPU usage per application on healthy nodes (for fairness metrics)."""
        usage: dict[str, float] = {a: 0.0 for a in self._apps}
        for replica, node_name in self._assignments.items():
            if self._nodes[node_name].failed:
                continue
            usage[replica.app] += self.demand_of(replica.app, replica.microservice).cpu
        return usage

    # -- failure handling --------------------------------------------------------
    def fail_nodes(self, names: Iterable[str]) -> list[ReplicaId]:
        """Mark nodes failed and return the replicas that were impacted.

        Impacted replicas stay in the assignment map (they are "down" but the
        desired state still references them); callers decide whether to evict
        them.  This matches Kubernetes semantics where pods on a NotReady
        node linger until evicted.
        """
        impacted: list[ReplicaId] = []
        for name in names:
            node = self._nodes[name]
            if node.failed:
                continue
            node.fail()
            self._failed[name] = None
            capacity = node.capacity
            self._cap_healthy[0] -= capacity.cpu
            self._cap_healthy[1] -= capacity.memory
            used_cpu, used_mem = self._used[name]
            self._used_healthy[0] -= used_cpu
            self._used_healthy[1] -= used_mem
            running = self._running
            dirty_apps = self._dirty_apps
            for replica in self._by_node[name]:
                key = (replica.app, replica.microservice)
                running[key] -= 1
                self._update_deficit(key)
                dirty_apps.add(replica.app)
            self._generation += 1
            self._dirty_nodes.add(name)
            impacted.extend(self.replicas_on(name))
        return impacted

    def recover_nodes(self, names: Iterable[str]) -> None:
        for name in names:
            node = self._nodes[name]
            if not node.failed:
                continue
            node.recover()
            self._failed.pop(name, None)
            capacity = node.capacity
            self._cap_healthy[0] += capacity.cpu
            self._cap_healthy[1] += capacity.memory
            used_cpu, used_mem = self._used[name]
            self._used_healthy[0] += used_cpu
            self._used_healthy[1] += used_mem
            running = self._running
            dirty_apps = self._dirty_apps
            for replica in self._by_node[name]:
                key = (replica.app, replica.microservice)
                running[key] = running.get(key, 0) + 1
                self._update_deficit(key)
                dirty_apps.add(key[0])
            self._generation += 1
            self._dirty_nodes.add(name)

    def evict_from_failed_nodes(self) -> list[ReplicaId]:
        """Unassign every replica currently placed on a failed node.

        Iterates the failed-node registry (failure order), so the scan is
        O(failed nodes + evicted replicas), not O(cluster).
        """
        evicted: list[ReplicaId] = []
        assignments = self._assignments
        used = self._used
        used_all = self._used_all
        demand_cache = self._demand
        apps = self._apps
        dirty_apps = self._dirty_apps
        for name in self._failed:
            by_node = self._by_node[name]
            if not by_node:
                continue
            # Bulk unassign: replicas on a failed node are not counted in the
            # running index or the healthy-used totals, so only the per-node
            # usage, the assignment map and the all-nodes totals change.
            replicas = sorted(by_node)
            used_cpu, used_mem = used[name]
            for replica in replicas:
                del assignments[replica]
                key = replica[:2]
                demand = demand_cache.get(key)
                if demand is None:
                    demand = apps[key[0]].get(key[1]).resources
                    demand_cache[key] = demand
                demand_cpu = demand.cpu
                demand_mem = demand.memory
                used_cpu -= demand_cpu
                used_mem -= demand_mem
                used_all[0] -= demand_cpu
                used_all[1] -= demand_mem
                evicted.append(replica)
                dirty_apps.add(key[0])
            used[name] = (used_cpu, used_mem)
            self._by_node[name] = set()
            if self._by_node_owned is not None:
                self._by_node_owned.add(name)
            self._generation += 1
            self._dirty_nodes.add(name)
        return evicted

    # -- copying -------------------------------------------------------------------
    def copy(self, *, share_nodes: bool = False) -> "ClusterState":
        """Deep-enough copy: nodes are copied, applications are shared.

        Applications are immutable from the scheduler's point of view, so
        sharing them keeps copies cheap even for 100k-node clusters.

        With ``share_nodes`` the :class:`Node` objects themselves are shared
        too.  That is only safe for callers that never change node health or
        labels on the copy — the packing dry-run inside
        :meth:`repro.core.scheduler.PhoenixScheduler.schedule` qualifies,
        simulators that inject failures do not.
        """
        clone = ClusterState.__new__(ClusterState)
        if share_nodes:
            clone._nodes = dict(self._nodes)
        else:
            clone._nodes = {
                name: Node(node.name, node.capacity, node.failed, dict(node.labels))
                for name, node in self._nodes.items()
            }
        clone._apps = dict(self._apps)
        clone._assignments = dict(self._assignments)
        clone._used = dict(self._used)
        # Share the per-node replica sets copy-on-write: whichever side
        # mutates a node's set first clones just that set.
        clone._by_node = dict(self._by_node)
        clone._by_node_owned = set()
        self._by_node_owned = set()
        clone._running = dict(self._running)
        clone._demand = dict(self._demand)
        clone._replica_target = dict(self._replica_target)
        clone._deficit = {name: set(lacking) for name, lacking in self._deficit.items()}
        clone._ms_names = dict(self._ms_names)
        clone._cap_all = list(self._cap_all)
        clone._cap_healthy = list(self._cap_healthy)
        clone._used_all = list(self._used_all)
        clone._used_healthy = list(self._used_healthy)
        clone._failed = dict(self._failed)
        # A copy is a fresh snapshot: its dirty accumulator starts empty.
        clone._generation = 0
        clone._dirty_nodes = set()
        clone._dirty_apps = set()
        clone._dirty_structural = False
        clone._dirty_base = 0
        return clone

    def resync_from(self, source: "ClusterState", node_names: Iterable[str]) -> None:
        """Realign this scratch copy with ``source`` (trusted, incremental).

        Used by :class:`repro.core.incremental.IncrementalScheduler`: this
        state must have been created as ``source.copy(share_nodes=True)``
        and ``node_names`` must cover every node whose usage or resident set
        changed on *either* state since the last resync (plus every
        currently failed node, whose eviction is re-derived each round).

        After the call this state is decision-equivalent to a fresh
        ``source.copy(share_nodes=True)``: the assignment map is an exact
        (order-preserving) clone, per-node usage floats are byte-identical
        for every resynced node, and the running counters, demand cache,
        failed registry and aggregate caches match the source.  Nothing is
        marked dirty — a resync is a snapshot, not a mutation.
        """
        self._assignments = dict(source._assignments)
        self._running = dict(source._running)
        self._apps = source._apps
        self._demand = source._demand
        self._replica_target = source._replica_target
        self._deficit = {name: set(lacking) for name, lacking in source._deficit.items()}
        self._ms_names = source._ms_names
        self._failed = dict(source._failed)
        self._cap_all = list(source._cap_all)
        self._cap_healthy = list(source._cap_healthy)
        self._used_all = list(source._used_all)
        self._used_healthy = list(source._used_healthy)
        owned = self._by_node_owned
        source_used = source._used
        source_by_node = source._by_node
        used = self._used
        by_node = self._by_node
        for name in node_names:
            used[name] = source_used[name]
            by_node[name] = set(source_by_node[name])
            if owned is not None:
                owned.add(name)

    # -- misc ------------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Small dict used in logs and tests."""
        return {
            "nodes": len(self._nodes),
            "failed_nodes": len(self.failed_nodes()),
            "applications": len(self._apps),
            "assigned_replicas": len(self._assignments),
            "utilization": round(self.utilization(), 4),
        }

    def __repr__(self) -> str:
        return f"ClusterState({self.summary()})"


def build_uniform_cluster(
    node_count: int,
    node_capacity: Resources | float,
    applications: Iterable[Application] = (),
    node_prefix: str = "node",
) -> ClusterState:
    """Convenience builder for a homogeneous cluster (AdaptLab default)."""
    if isinstance(node_capacity, (int, float)):
        node_capacity = Resources(cpu=float(node_capacity), memory=float(node_capacity))
    nodes = [Node(f"{node_prefix}-{i}", node_capacity) for i in range(node_count)]
    return ClusterState(nodes=nodes, applications=applications)
