"""Process-local metrics registry: counters, gauges, log-bucketed histograms.

The registry is **observation-only by construction**.  Every mutator is
gated on a single attribute check (``registry._enabled``) so the disabled
path costs one branch, and no instrument ever feeds a value back into the
code being measured: enabling or disabling observability must never change
a digest, a trace byte, or a float accumulation (``tests/test_obs_lockstep``
holds the stack to that contract).

Histograms are log-bucketed — four buckets per power of two (~19% relative
resolution) — with exact ``count``/``sum``/``max`` kept alongside, so
quantiles cost O(buckets) and no sample list grows without bound.

Timestamps come from an injectable clock.  ``REPRO_OBS_CLOCK=tick`` (or
``tick:<step>``) swaps in a deterministic counting clock so subprocess
tests can demand byte-identical snapshots.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TickClock",
    "host_block",
    "render_prometheus",
    "resolve_clock",
    "validate_prometheus_text",
]

#: Histogram sub-buckets per power of two.
_BUCKETS_PER_OCTAVE = 4

#: Bucket index reserved for non-positive observations.
_ZERO_BUCKET = -(10**9)

_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class TickClock:
    """Deterministic clock: each call returns ``n * step`` for n = 0, 1, ...

    Installed via ``REPRO_OBS_CLOCK=tick[:step]`` so CLI subprocess tests
    get byte-identical timing fields across runs.
    """

    __slots__ = ("step", "_ticks")

    def __init__(self, step: float = 0.001) -> None:
        self.step = step
        self._ticks = 0

    def __call__(self) -> float:
        value = self._ticks * self.step
        self._ticks += 1
        return value


def resolve_clock(spec: str | None = None):
    """Pick the registry clock: perf_counter, or a TickClock from env."""
    if spec is None:
        spec = os.environ.get("REPRO_OBS_CLOCK", "")
    if spec.startswith("tick"):
        step = 0.001
        if ":" in spec:
            step = float(spec.split(":", 1)[1])
        return TickClock(step)
    return time.perf_counter


def host_block(workers: int | None = None) -> dict:
    """The shared host-metadata block every BENCH_*.json row carries.

    ``underprovisioned`` mirrors bench_fleet's original meaning: the run
    asked for more workers than the host has cores, so parallel speedup
    gates should not be trusted.
    """
    cores = os.cpu_count() or 1
    return {
        "cpu_count": cores,
        "underprovisioned": workers is not None and cores < workers,
    }


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return _ZERO_BUCKET
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    sub = int((mantissa - 0.5) * 2 * _BUCKETS_PER_OCTAVE)
    if sub >= _BUCKETS_PER_OCTAVE:  # mantissa == 1.0 edge after rounding
        sub = _BUCKETS_PER_OCTAVE - 1
    return (exponent - 1) * _BUCKETS_PER_OCTAVE + sub


def _bucket_upper(index: int) -> float:
    if index == _ZERO_BUCKET:
        return 0.0
    exponent, sub = divmod(index, _BUCKETS_PER_OCTAVE)
    mantissa = 0.5 + (sub + 1) / (2 * _BUCKETS_PER_OCTAVE)
    return mantissa * (2.0 ** (exponent + 1))


class Counter:
    """Monotonic counter.  ``inc`` is a no-op while the registry is off."""

    __slots__ = ("name", "labels", "_registry", "value")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._registry = registry
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if self._registry._enabled:
            self.value += amount

    def force_inc(self, amount: int = 1) -> None:
        """Count even while the registry is disabled (error signals)."""
        self.value += amount


class Gauge:
    """Point-in-time value.  ``set`` is a no-op while the registry is off."""

    __slots__ = ("name", "labels", "_registry", "value")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._registry._enabled:
            self.value = value


class Histogram:
    """Log-bucketed histogram with exact count/sum/max and bucket quantiles."""

    __slots__ = ("name", "labels", "_registry", "buckets", "count", "sum", "max")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._registry = registry
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile from bucket upper bounds, clamped to max."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(_bucket_upper(index), self.max)
        return self.max

    def summary(self) -> dict:
        out = {"count": self.count, "sum": self.sum, "max": self.max}
        for key, q in _QUANTILES:
            out[key] = self.quantile(q)
        return out


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _flat_name(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Process-local registry of named instruments.

    Instruments are created on first use and survive enable/disable
    flips (values persist; mutation is simply gated).  Creation is
    thread-safe; mutation is intentionally unlocked — counters and
    histogram buckets tolerate benign races, and the hot path must not
    pay for a lock it does not need.
    """

    def __init__(self, clock=None) -> None:
        self._enabled = False
        self.clock = clock if clock is not None else resolve_clock()
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every instrument (tests; enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def _get(self, table: dict, factory, name: str, labels: dict):
        key = (name, _label_key(labels))
        instrument = table.get(key)
        if instrument is None:
            with self._lock:
                instrument = table.get(key)
                if instrument is None:
                    instrument = factory(self, name, key[1])
                    table[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self, *, include_timing: bool = True) -> dict:
        """Deterministically ordered view of every instrument.

        ``include_timing=False`` drops histogram sum/max/quantiles (the
        wall-clock-dependent fields), leaving only counts — what the
        determinism tests compare when no fake clock is installed.
        """
        counters = {
            _flat_name(c.name, c.labels): c.value
            for c in self._counters.values()
        }
        gauges = {
            _flat_name(g.name, g.labels): g.value
            for g in self._gauges.values()
        }
        histograms = {}
        for hist in self._histograms.values():
            if include_timing:
                histograms[_flat_name(hist.name, hist.labels)] = hist.summary()
            else:
                histograms[_flat_name(hist.name, hist.labels)] = {
                    "count": hist.count
                }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def snapshot_jsonl(self, *, include_timing: bool = True) -> str:
        """One JSON line per instrument, sorted — the ``--metrics-out`` format."""
        snap = self.snapshot(include_timing=include_timing)
        lines = []
        for kind in ("counters", "gauges", "histograms"):
            for name, value in snap[kind].items():
                record = {"metric": name, "type": kind[:-1]}
                if kind == "histograms":
                    record.update(value)
                else:
                    record["value"] = value
                lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def prometheus_text(self, *, prefix: str = "repro_obs_") -> str:
        """Prometheus/OpenMetrics exposition of every instrument."""
        snap = self.snapshot()
        return render_prometheus(
            counters={prefix + k: v for k, v in snap["counters"].items()},
            gauges={prefix + k: v for k, v in snap["gauges"].items()},
            summaries={prefix + k: v for k, v in snap["histograms"].items()},
        )


# --- Prometheus text rendering / validation (shared with serve) -----------


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name (labels flattened) to prometheus rules."""
    base, _, labels = name.partition("{")
    out = []
    for ch in base:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    if labels:
        pairs = []
        for item in labels.rstrip("}").split(","):
            key, _, value = item.partition("=")
            value = value.replace("\\", "\\\\").replace('"', '\\"')
            pairs.append(f'{key}="{value}"')
        sanitized += "{" + ",".join(pairs) + "}"
    return sanitized


def _split_labels(prom_name: str) -> tuple[str, str]:
    base, sep, labels = prom_name.partition("{")
    return base, (sep + labels if sep else "")


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def _format_value(value) -> str:
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(*, counters=None, gauges=None, summaries=None) -> str:
    """Render metric maps as Prometheus text exposition (version 0.0.4).

    ``summaries`` maps name -> histogram summary dict (count/sum/max +
    pNN quantiles); rendered as a summary family plus a ``_max`` gauge.
    """
    lines: list[str] = []
    for name, value in (counters or {}).items():
        base, labels = _split_labels(_prom_name(name))
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total{labels} {_format_value(value)}")
    for name, value in (gauges or {}).items():
        base, labels = _split_labels(_prom_name(name))
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base}{labels} {_format_value(value)}")
    for name, summary in (summaries or {}).items():
        base, labels = _split_labels(_prom_name(name))
        lines.append(f"# TYPE {base} summary")
        for key, value in sorted(summary.items()):
            if key.startswith("p") and key[1:].isdigit():
                q = int(key[1:]) / (10 ** (len(key) - 1))
                qlabels = _merge_labels(labels, f'quantile="{q}"')
                lines.append(f"{base}{qlabels} {_format_value(value)}")
        if "count" in summary:
            lines.append(f"{base}_count{labels} {_format_value(summary['count'])}")
        if "sum" in summary:
            lines.append(f"{base}_sum{labels} {_format_value(summary['sum'])}")
        if "max" in summary:
            lines.append(f"# TYPE {base}_max gauge")
            lines.append(f"{base}_max{labels} {_format_value(summary['max'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_prometheus_text(text: str) -> list[str]:
    """Syntax-check a Prometheus exposition; returns a list of problems.

    Not a full parser — enough to catch the drift CI cares about: bad
    metric names, malformed label blocks, non-numeric values, TYPE lines
    naming a family no sample uses.
    """
    problems: list[str] = []
    typed: set[str] = set()
    sampled: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "summary",
                    "histogram",
                    "untyped",
                ):
                    problems.append(f"line {number}: malformed TYPE comment")
                else:
                    typed.add(parts[2])
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
            problems.append(f"line {number}: bad metric name {name!r}")
            continue
        if name[0].isdigit():
            problems.append(f"line {number}: metric name starts with a digit")
        if "{" in line:
            if "}" not in line:
                problems.append(f"line {number}: unterminated label block")
                continue
            labels = line[line.index("{") + 1 : line.rindex("}")]
            for item in labels.split(","):
                if item and ('="' not in item or not item.endswith('"')):
                    problems.append(f"line {number}: malformed label {item!r}")
            rest = line[line.rindex("}") + 1 :].strip()
        else:
            rest = line.split(" ", 1)[1].strip() if " " in line else ""
        value = rest.split(" ")[0] if rest else ""
        try:
            float(value)
        except ValueError:
            problems.append(f"line {number}: non-numeric value {value!r}")
        for suffix in ("_total", "_count", "_sum", "_max"):
            if name.endswith(suffix):
                sampled.add(name[: -len(suffix)])
                sampled.add(name)
        sampled.add(name)
    for family in typed:
        if family not in sampled:
            problems.append(f"TYPE declared for {family} but no samples present")
    return problems
