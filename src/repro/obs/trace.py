"""Structured spans with parent/child context that crosses shard IPC.

A :class:`Tracer` hands out context-manager spans.  Span ids are
sequential (``<prefix><n>``), never random, so two identical runs emit
identical ids; timestamps come from the same injectable clock the
metrics registry uses.  The current span travels through a
``contextvars.ContextVar``, so nesting works across ``await`` points in
serve as well as plain call stacks.

Cross-process propagation: when tracing is on, :class:`~repro.fleet.pool.
ShardPool` wraps each dispatched command as ``("span", parent_id,
id_prefix, inner)``.  The worker enables its own tracer under that prefix
(``w<shard>i<incarnation>.`` — deterministic across restarts), attaches
the parent id, handles the inner command, and ships its finished spans
back inside the reply as :class:`SpanRecord` values over the wire codec.
The parent adopts them on receipt, so one fleet round yields one merged
span tree covering parent and workers.

Like the registry, the disabled path is observation-free: ``span()``
returns a shared no-op context manager and nothing is recorded.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import resolve_clock

__all__ = ["SpanRecord", "Tracer"]

#: Finished spans kept per tracer; older spans fall off the front.
DEFAULT_SPAN_LIMIT = 4096


@dataclass(slots=True)
class SpanRecord:
    """One finished span.  Crosses shard IPC via the wire codec (record 14)."""

    name: str
    span_id: str
    parent_id: str  # "" marks a root span
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_record(self, *, include_timing: bool = True) -> dict:
        record = {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
        }
        if include_timing:
            record["start"] = self.start
            record["end"] = self.end
        if self.attrs:
            record["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return record


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        tracer = self._tracer
        self._span_id = tracer._next_id()
        self._parent = tracer._current.get()
        self._token = tracer._current.set(self._span_id)
        self._start = tracer.clock()
        return self

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        end = tracer.clock()
        tracer._current.reset(self._token)
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        tracer.finished.append(
            SpanRecord(
                name=self._name,
                span_id=self._span_id,
                parent_id=self._parent,
                start=self._start,
                end=end,
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Creates spans, tracks the current one, and buffers finished records."""

    def __init__(self, clock=None, *, prefix: str = "", limit: int = DEFAULT_SPAN_LIMIT) -> None:
        self._enabled = False
        self.clock = clock if clock is not None else resolve_clock()
        self.prefix = prefix
        self._sequence = 0
        self.finished: deque[SpanRecord] = deque(maxlen=limit)
        self._current = contextvars.ContextVar("repro_obs_span", default="")

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, *, prefix: str | None = None) -> None:
        if prefix is not None:
            self.prefix = prefix
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        self.finished.clear()
        self._sequence = 0

    def _next_id(self) -> str:
        span_id = f"{self.prefix}{self._sequence}"
        self._sequence += 1
        return span_id

    def span(self, name: str, **attrs):
        """A context manager span; the shared no-op when tracing is off."""
        if not self._enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    def current_id(self) -> str:
        """The active span's id ("" at the root)."""
        return self._current.get()

    @contextlib.contextmanager
    def attach(self, parent_id: str):
        """Make a foreign span id the current parent (worker side of IPC)."""
        token = self._current.set(parent_id)
        try:
            yield
        finally:
            self._current.reset(token)

    def adopt(self, spans) -> None:
        """Merge externally produced spans (a worker's reply) into the buffer."""
        self.finished.extend(spans)

    def drain(self) -> list[SpanRecord]:
        """Take and clear every finished span (ships a worker's spans home)."""
        spans = list(self.finished)
        self.finished.clear()
        return spans

    def to_jsonl(self, *, include_timing: bool = True) -> str:
        """Finished spans as JSONL — the ``GET /spans`` body."""
        lines = [
            json.dumps(
                span.to_record(include_timing=include_timing),
                sort_keys=True,
                separators=(",", ":"),
            )
            for span in self.finished
        ]
        return "\n".join(lines) + ("\n" if lines else "")
