"""repro.obs — unified observability plane (metrics registry + tracing).

Dependency-free and observation-only: every layer of the stack funnels
counters, gauges, histograms, and spans through the process-default
:func:`registry` and :func:`tracer`, and turning them on or off never
changes a digest, trace byte, or float accumulation (the lockstep suite
in ``tests/test_obs_lockstep.py`` enforces that).

Activation:

* programmatic — :func:`enable` / :func:`disable`;
* environment — ``REPRO_OBS=1`` enables both at import (CI smoke jobs);
* clock — ``REPRO_OBS_CLOCK=tick[:step]`` installs a deterministic
  counting clock so subprocess snapshots are byte-identical.

Exposition: ``GET /metrics`` on serve (Prometheus text via Accept
negotiation), ``GET /spans`` (JSONL), ``--metrics-out`` on the CLI, and
:meth:`MetricsRegistry.snapshot_jsonl` for the bench scripts.
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TickClock,
    host_block,
    render_prometheus,
    resolve_clock,
    validate_prometheus_text,
)
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TickClock",
    "Tracer",
    "count_subscriber_error",
    "disable",
    "enable",
    "enabled",
    "host_block",
    "registry",
    "render_prometheus",
    "resolve_clock",
    "tracer",
    "validate_prometheus_text",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer(clock=_REGISTRY.clock)


def registry() -> MetricsRegistry:
    """The process-default metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-default tracer."""
    return _TRACER


def enable() -> None:
    """Turn on the default registry and tracer."""
    _REGISTRY.enable()
    _TRACER.enable()


def disable() -> None:
    """Turn off the default registry and tracer (buffers are kept)."""
    _REGISTRY.disable()
    _TRACER.disable()


def enabled() -> bool:
    return _REGISTRY.enabled or _TRACER.enabled


def count_subscriber_error() -> None:
    """Record a raising EventBus subscriber.

    Error signals count even while observability is off — a swallowed
    subscriber exception must leave *some* trace — hence ``force_inc``.
    """
    _REGISTRY.counter("obs.subscriber_errors").force_inc()


if os.environ.get("REPRO_OBS") == "1":
    enable()
