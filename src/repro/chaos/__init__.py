"""Chaos-testing service for validating criticality tags."""

from repro.chaos.injector import ChaosInjector, DegradationScenario
from repro.chaos.report import ChaosReport, ScenarioResult
from repro.chaos.suite import ChaosTestingService, normalized_utility, verify_tagging
from repro.chaos.validation import AnomalyKind, TagAnomaly, ValidationReport, validate_tags

__all__ = [
    "ChaosInjector",
    "DegradationScenario",
    "ChaosReport",
    "ScenarioResult",
    "ChaosTestingService",
    "normalized_utility",
    "verify_tagging",
    "AnomalyKind",
    "TagAnomaly",
    "ValidationReport",
    "validate_tags",
]
