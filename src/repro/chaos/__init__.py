"""Chaos-testing service: criticality tags, storms, fleet cell outages,
the invariant oracle, and the property-based chaos fuzzer."""

from repro.chaos.cell_outage import CellOutageReport, run_cell_outage_check
from repro.chaos.fuzz import (
    DriveResult,
    FuzzConfig,
    FuzzReport,
    FuzzViolation,
    drive_trace,
    random_program,
    refail_interleaving,
    replay_reproducer,
    run_fuzz,
    shrink_trace,
)
from repro.chaos.invariants import (
    INVARIANTS,
    InvariantError,
    InvariantViolation,
    check_capacity,
    check_equivalence,
    check_fleet,
    check_full_recovery,
    check_identity,
    check_invariants,
    check_placement,
    check_spillover_conservation,
    check_state,
    verify_invariants,
)
from repro.chaos.cluster_check import (
    ClusterChaosReport,
    ClusterScenarioResult,
    verify_tagging_on_cluster,
)
from repro.chaos.injector import ChaosInjector, DegradationScenario
from repro.chaos.report import ChaosReport, ScenarioResult
from repro.chaos.storm import StormReport, run_storm_check
from repro.chaos.suite import ChaosTestingService, normalized_utility, verify_tagging
from repro.chaos.validation import AnomalyKind, TagAnomaly, ValidationReport, validate_tags

__all__ = [
    "CellOutageReport",
    "run_cell_outage_check",
    "DriveResult",
    "FuzzConfig",
    "FuzzReport",
    "FuzzViolation",
    "drive_trace",
    "random_program",
    "refail_interleaving",
    "replay_reproducer",
    "run_fuzz",
    "shrink_trace",
    "INVARIANTS",
    "InvariantError",
    "InvariantViolation",
    "check_capacity",
    "check_equivalence",
    "check_fleet",
    "check_full_recovery",
    "check_identity",
    "check_invariants",
    "check_placement",
    "check_spillover_conservation",
    "check_state",
    "verify_invariants",
    "ClusterChaosReport",
    "ClusterScenarioResult",
    "verify_tagging_on_cluster",
    "ChaosInjector",
    "DegradationScenario",
    "ChaosReport",
    "ScenarioResult",
    "StormReport",
    "run_storm_check",
    "ChaosTestingService",
    "normalized_utility",
    "verify_tagging",
    "AnomalyKind",
    "TagAnomaly",
    "ValidationReport",
    "validate_tags",
]
