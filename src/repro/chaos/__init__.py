"""Chaos-testing service: criticality tags, storms, and fleet cell outages."""

from repro.chaos.cell_outage import CellOutageReport, run_cell_outage_check
from repro.chaos.cluster_check import (
    ClusterChaosReport,
    ClusterScenarioResult,
    verify_tagging_on_cluster,
)
from repro.chaos.injector import ChaosInjector, DegradationScenario
from repro.chaos.report import ChaosReport, ScenarioResult
from repro.chaos.storm import StormReport, run_storm_check
from repro.chaos.suite import ChaosTestingService, normalized_utility, verify_tagging
from repro.chaos.validation import AnomalyKind, TagAnomaly, ValidationReport, validate_tags

__all__ = [
    "CellOutageReport",
    "run_cell_outage_check",
    "ClusterChaosReport",
    "ClusterScenarioResult",
    "verify_tagging_on_cluster",
    "ChaosInjector",
    "DegradationScenario",
    "ChaosReport",
    "ScenarioResult",
    "StormReport",
    "run_storm_check",
    "ChaosTestingService",
    "normalized_utility",
    "verify_tagging",
    "AnomalyKind",
    "TagAnomaly",
    "ValidationReport",
    "validate_tags",
]
