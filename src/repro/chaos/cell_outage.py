"""Fleet chaos: lose an entire cell, recover availability via spillover.

The storm check (:mod:`repro.chaos.storm`) exercises one engine through a
temporal failure burst; this check exercises the *federation* layer through
the scenario it exists for — a whole failure domain going dark at once:

* build an N-cell fleet, each cell hosting one copy of the template
  application, and converge it;
* kill every node of one cell and reconcile the fleet;
* assert the fleet **recovers availability through spillover** (the victim
  cell's critical set runs in donor cells), that the spillover was planned
  two-phase (the fleet-level plan→pack round never overshoots a donor's
  free capacity, and the donors' own engines enforce per-node capacity on
  apply — the check re-verifies every node's usage against its capacity),
  and that recovering the victim releases the spillover cleanly (no clone
  applications left behind).

Exercised by ``python -m repro chaos --cell-outage`` and the fleet tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import AppTemplate
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, build_uniform_cluster
from repro.fleet.config import FleetConfig
from repro.fleet.engine import FleetEngine
from repro.fleet.events import SpilloverPlanned, SpilloverReleased
from repro.fleet.summary import is_clone


@dataclass
class CellOutageReport:
    """Outcome of one cell-outage chaos run for one template."""

    app: str
    cells: int
    victim: str
    baseline_availability: float
    outage_availability: float
    recovered_availability: float
    spillovers_planned: int
    spillovers_released: int
    capacity_respected: bool
    clones_released: bool

    #: Failure explanations collected along the way (empty = passed).
    problems: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.problems

    def to_text(self) -> str:
        verdict = "OK" if self.passed else "FAIL"
        lines = [
            f"Cell-outage chaos for {self.app}: {verdict} — "
            f"availability {self.baseline_availability:.2f} → "
            f"{self.outage_availability:.2f} (cell {self.victim} dark, "
            f"{self.spillovers_planned} spillover(s)) → "
            f"{self.recovered_availability:.2f} after recovery "
            f"({self.spillovers_released} released)"
        ]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def _capacity_violations(state: ClusterState) -> list[str]:
    """Nodes whose used resources exceed capacity (beyond float tolerance)."""
    violations = []
    for name, node in state.nodes.items():
        used = state.used_on(name)
        if used.cpu > node.capacity.cpu + 1e-6 or used.memory > node.capacity.memory + 1e-6:
            violations.append(
                f"node {name}: used {used} exceeds capacity {node.capacity}"
            )
    return violations


def run_cell_outage_check(
    template: AppTemplate,
    cells: int = 4,
    node_count: int = 8,
    objective: str = "revenue",
    headroom: float = 1.6,
    victim: int = 0,
    workers: int = 1,
) -> CellOutageReport:
    """Kill one cell of a fleet; assert spillover recovery and clean release.

    Each cell is a fresh uniform cluster sized to hold one copy of
    ``template`` with ``headroom`` (so N-1 donors hold enough spare for one
    refugee critical set).  The check passes when (1) the fleet returns to
    full critical availability while the victim cell is dark, (2) no node
    in any cell ever exceeds its capacity — the two-phase apply contract —
    and (3) recovering the victim releases every spillover clone.
    """
    if cells < 2:
        raise ValueError("cell-outage chaos needs at least 2 cells")
    app = template.application
    demand = app.total_demand()
    per_replica_cpu = max(ms.resources.cpu for ms in app)
    per_replica_mem = max(ms.resources.memory for ms in app)
    node_cpu = max(demand.cpu * headroom / node_count, per_replica_cpu * headroom)
    node_mem = max(demand.memory * headroom / node_count, per_replica_mem * headroom, 1.0)
    states = [
        build_uniform_cluster(
            node_count, Resources(cpu=node_cpu, memory=node_mem), applications=[app]
        )
        for _ in range(cells)
    ]
    fleet = FleetEngine(
        FleetConfig(cells=cells, objective=objective, workers=workers), states=states
    )
    planned: list[SpilloverPlanned] = []
    released: list[SpilloverReleased] = []
    fleet.events.subscribe(planned.append, SpilloverPlanned)
    fleet.events.subscribe(released.append, SpilloverReleased)

    problems: list[str] = []
    fleet.reconcile(force=True)
    baseline = fleet.availability()
    if baseline < 1.0 - 1e-9:
        problems.append(f"fleet did not converge before the outage ({baseline:.3f})")

    victim_cell = fleet.cells[victim]
    victim_cell.state.fail_nodes(list(victim_cell.state.nodes))
    outage_report = fleet.reconcile()
    outage = outage_report.availability
    if not planned:
        problems.append("no spillover was planned for the dark cell")
    if outage < 1.0 - 1e-9:
        problems.append(
            f"availability did not recover via spillover ({outage:.3f}); "
            f"unplaced residuals: {list(outage_report.unplaced)}"
        )
    for cell in fleet.cells:
        for violation in _capacity_violations(cell.state):
            problems.append(f"cell {cell.name}: {violation}")

    victim_cell.state.recover_nodes(list(victim_cell.state.nodes))
    recovery_report = fleet.reconcile()
    recovered = recovery_report.availability
    if recovered < 1.0 - 1e-9:
        problems.append(f"availability did not return after recovery ({recovered:.3f})")
    leftovers = [
        name
        for cell in fleet.cells
        for name in cell.state.applications
        if is_clone(name)
    ]
    clones_released = not leftovers
    if leftovers:
        problems.append(f"spillover clones left behind after recovery: {leftovers}")
    if planned and not released:
        problems.append("spillover was never released after the victim recovered")

    return CellOutageReport(
        app=app.name,
        cells=cells,
        victim=victim_cell.name,
        baseline_availability=baseline,
        outage_availability=outage,
        recovered_availability=recovered,
        spillovers_planned=len(planned),
        spillovers_released=len(released),
        capacity_respected=not any("exceeds capacity" in p for p in problems),
        clones_released=clones_released,
        problems=problems,
    )
