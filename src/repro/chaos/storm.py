"""Trace-driven chaos: survive a failure storm, recover completely.

The template suite (:mod:`repro.chaos.suite`) degrades by decree and the
cluster check (:mod:`repro.chaos.cluster_check`) degrades at fixed failure
levels.  This module adds the *temporal* dimension: a seeded failure-storm
trace (burst of node failures, staged recovery — the Figure-6 timeline
shape) is replayed through a :class:`~repro.api.engine.PhoenixEngine` via
:class:`~repro.traces.replayer.TraceReplayer`, and the report checks two
engine behaviours no single-snapshot check can see:

* the engine reacts to every step that changes the failed set (liveness of
  the failure detector across a burst of changes), and
* after the staged recovery completes, the application returns to full
  availability (no replicas stranded by the storm).
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.api as api
from repro.apps.base import AppTemplate
from repro.cluster.resources import Resources
from repro.cluster.state import build_uniform_cluster
from repro.traces.generators import failure_storm
from repro.traces.replayer import ReplayMetrics, TraceReplayer
from repro.traces.schema import Trace


@dataclass
class StormReport:
    """Outcome of one storm replay for one template."""

    app: str
    trace_metadata: dict
    metrics: ReplayMetrics
    min_availability: float
    final_availability: float
    recovered: bool

    @property
    def passed(self) -> bool:
        """Pass iff full availability returned once the storm ended."""
        return self.recovered

    def to_text(self) -> str:
        verdict = "OK" if self.passed else "FAIL"
        return (
            f"Storm chaos for {self.app}: {verdict} — trough availability "
            f"{self.min_availability:.2f}, final {self.final_availability:.2f} "
            f"({len(self.metrics)} steps, "
            f"{self.trace_metadata.get('fraction', '?')} of nodes hit)"
        )


def run_storm_check(
    template: AppTemplate,
    node_count: int = 12,
    storm_fraction: float = 0.5,
    objective: str = "revenue",
    headroom: float = 1.3,
    seed: int = 0,
    trace: Trace | None = None,
) -> StormReport:
    """Replay a failure storm through the engine and check full recovery.

    A fresh uniform cluster sized to hold ``template`` with ``headroom`` is
    placed by an engine round, then a :func:`repro.traces.generators.failure_storm`
    trace (or the caller's ``trace``) is replayed with reconcile semantics.
    The check passes when the last replay step reports availability 1.0 —
    every criticality level back up after the staged recovery.
    """
    if not 0.0 < storm_fraction < 1.0:
        raise ValueError("storm_fraction must be within (0, 1)")
    app = template.application
    demand = app.total_demand()
    per_replica_cpu = max(ms.resources.cpu for ms in app)
    per_replica_mem = max(ms.resources.memory for ms in app)
    node_cpu = max(demand.cpu * headroom / node_count, per_replica_cpu * headroom)
    node_mem = max(demand.memory * headroom / node_count, per_replica_mem * headroom, 1.0)
    state = build_uniform_cluster(
        node_count, Resources(cpu=node_cpu, memory=node_mem), applications=[app]
    )
    engine = api.engine(objective)
    engine.reconcile(state, force=True)  # steady-state placement

    if trace is None:
        trace = failure_storm(
            [n.name for n in state.nodes.values()],
            at=60.0,
            fraction=storm_fraction,
            recovery_after=600.0,
            recovery_steps=3,
            seed=seed,
        )
    metrics = TraceReplayer(engine, seed=seed).run(state, trace)
    final = metrics.final()
    return StormReport(
        app=app.name,
        trace_metadata=dict(trace.metadata),
        metrics=metrics,
        min_availability=metrics.min("availability"),
        final_availability=final.availability,
        recovered=final.availability >= 1.0 - 1e-9 and final.failed_nodes == 0,
    )
