"""Seeded property-based chaos fuzzer: search for invariant violations.

The storm and cell-outage checks replay *fixed* scenarios; this module turns
the chaos layer into a search.  A seeded case generator composes random
event programs from the existing trace generators (Poisson churn, rack
storms, diurnal load, capacity schedules, refail-before-recovery
interleavings), drives a :class:`~repro.api.engine.PhoenixEngine` through
each program with the invariant oracle (:mod:`repro.chaos.invariants`)
checked after every reconcile round — optionally in lockstep with a
full-recompute twin engine for the ``incremental-equivalence`` invariant —
and, on a violation, **shrinks** the failing trace to a minimal reproducer.

Everything is a pure function of the seeds: the same :class:`FuzzConfig`
produces byte-identical event programs, byte-identical shrunk reproducers
(``Trace.dumps``) and a byte-identical report.  Reproducers are ordinary
schema-v1 JSONL traces whose metadata records the fuzz seed, case index and
violated invariant, so ``python -m repro replay --trace`` and
:func:`replay_reproducer` can re-trigger the failure.

Entry points: :func:`run_fuzz` (the search loop, also behind
``python -m repro fuzz``), :func:`random_program` (one seeded case),
:func:`drive_trace` (one oracle-checked replay, shared with
:mod:`repro.corpus`), :func:`shrink_trace` (delta-debugging minimizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.chaos.invariants import (
    InvariantViolation,
    check_equivalence,
    check_full_recovery,
    check_state,
)
from repro.traces.generators import (
    capacity_schedule,
    correlated_failures,
    diurnal_load,
    failure_storm,
    poisson_failures,
)
from repro.traces.replayer import apply_trace_event
from repro.traces.schema import NodeFailure, NodeRecovery, Trace, TraceEvent, merge_traces


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign: environment shape, budget, and the master seed."""

    #: Random event programs to generate and check.
    cases: int = 20
    #: AdaptLab environment shape the programs run against.
    node_count: int = 24
    n_apps: int = 2
    target_utilization: float = 0.6
    env_seed: int = 2025
    #: Scenario horizon in simulated seconds (programs end fully recovered).
    horizon: float = 1800.0
    objective: str = "revenue"
    #: Master seed; case ``i`` derives its own seed from it.
    seed: int = 0
    #: Drive a full-recompute twin and check ``incremental-equivalence``.
    lockstep: bool = True
    #: Budget for the shrinking predicate (re-replays of the failing case).
    max_shrink_attempts: int = 400

    def case_seed(self, case: int) -> int:
        """The seed of case ``case`` — a pure function of the master seed."""
        return self.seed * 100_003 + case


# -- event-program generation --------------------------------------------------


def refail_interleaving(
    node_names: Sequence[str], horizon: float = 1800.0, seed: int = 0
) -> Trace:
    """Failures re-announced while down, and re-failures mid-recovery.

    The adversarial interleaving for failure *detectors*: a victim group
    fails, is failed again together with fresh victims before anyone
    recovered, half of it recovers and immediately fails again, and only
    then does everything return.  Idempotent ``fail_nodes``/``recover_nodes``
    semantics make the double announcements legal trace-wise; the oracle
    checks the engine never double-books the churned replicas.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)
    count = max(2, int(len(node_names) * 0.25))
    picked = [node_names[i] for i in rng.permutation(len(node_names))[: 2 * count]]
    group_a, group_b = picked[:count], picked[count : 2 * count]
    t = sorted(float(x) for x in rng.uniform(0.05 * horizon, 0.9 * horizon, size=5))
    half = group_a[: max(1, count // 2)]
    events: list[TraceEvent] = [
        NodeFailure(time=round(t[0], 6), nodes=tuple(group_a)),
        NodeFailure(time=round(t[1], 6), nodes=tuple(group_a + group_b)),
        NodeRecovery(time=round(t[2], 6), nodes=tuple(half)),
        NodeFailure(time=round(t[3], 6), nodes=tuple(half)),
        NodeRecovery(time=round(t[4], 6), nodes=tuple(group_a + group_b)),
    ]
    return Trace(
        events=events,
        metadata={
            "generator": "refail_interleaving",
            "nodes": len(node_names),
            "horizon": horizon,
            "seed": seed,
        },
    ).validate()


def _random_walk_fractions(rng: np.random.Generator) -> list[float]:
    steps = int(rng.integers(3, 8))
    level = 1.0
    fractions = []
    for _ in range(steps):
        level = float(np.clip(level + rng.uniform(-0.35, 0.25), 0.3, 1.0))
        fractions.append(round(level, 6))
    return fractions


#: name -> segment builder(node_names, horizon, rng-derived seed, rng).
_SEGMENTS: dict[str, Callable] = {
    "poisson": lambda names, horizon, seed, rng: poisson_failures(
        names,
        horizon=horizon,
        mtbf=horizon * float(rng.uniform(0.5, 2.0)),
        mttr=horizon * float(rng.uniform(0.05, 0.25)),
        seed=seed,
    ),
    "rack": lambda names, horizon, seed, rng: correlated_failures(
        names,
        rack_size=int(rng.integers(2, max(3, len(names) // 4))),
        horizon=horizon,
        rack_mtbf=horizon * float(rng.uniform(1.0, 3.0)),
        mttr=horizon * float(rng.uniform(0.1, 0.3)),
        seed=seed,
    ),
    "storm": lambda names, horizon, seed, rng: failure_storm(
        names,
        at=horizon * float(rng.uniform(0.05, 0.4)),
        fraction=float(rng.uniform(0.2, 0.7)),
        burst_waves=int(rng.integers(1, 5)),
        recovery_after=horizon * float(rng.uniform(0.1, 0.3)),
        recovery_steps=int(rng.integers(1, 5)),
        recovery_step_seconds=horizon * 0.02,
        seed=seed,
    ),
    "diurnal": lambda names, horizon, seed, rng: diurnal_load(
        horizon=horizon,
        step_seconds=horizon / int(rng.integers(6, 16)),
        amplitude=float(rng.uniform(0.1, 0.8)),
        period=horizon,
        seed=seed,
    ),
    "capacity": lambda names, horizon, seed, rng: capacity_schedule(
        _random_walk_fractions(rng),
        step_seconds=horizon / 8.0,
        metadata={"generator": "capacity_schedule", "seed": seed},
    ),
    "refail": lambda names, horizon, seed, rng: refail_interleaving(
        names, horizon=horizon * 0.9, seed=seed
    ),
}


def random_program(
    node_names: Sequence[str], *, horizon: float = 1800.0, seed: int = 0
) -> Trace:
    """One seeded random event program composed from the trace generators.

    Picks 1–3 generator segments (Poisson churn, rack storms, failure
    storms, diurnal load, capacity schedules, refail interleavings) with
    seeded parameters, merges them, and appends a closing full recovery so
    the ``full-recovery-availability`` invariant is always exercised.  A
    pure function of ``(node_names, horizon, seed)`` — byte-identical on
    every call.
    """
    rng = np.random.default_rng(seed)
    names = sorted(_SEGMENTS)
    count = int(rng.integers(1, 4))
    chosen = [names[int(i)] for i in rng.integers(0, len(names), size=count)]
    segments = [
        _SEGMENTS[name](node_names, horizon, int(rng.integers(2**31)), rng)
        for name in chosen
    ]
    closing = Trace(
        events=[NodeRecovery(time=round(horizon + 60.0, 6), nodes=tuple(node_names))],
        metadata={"generator": "closing_recovery"},
    )
    return merge_traces(
        segments + [closing],
        metadata={
            "generator": "fuzz_program",
            "seed": seed,
            "segments": chosen,
            "nodes": len(node_names),
            "horizon": horizon,
        },
    ).validate()


# -- oracle-checked replay -----------------------------------------------------


@dataclass
class DriveResult:
    """Outcome of one oracle-checked replay of one trace."""

    #: Reconcile rounds driven (one per trace step, plus convergence).
    steps: int = 0
    #: ``(time, violation)`` pairs, in discovery order.
    violations: list[tuple[float, InvariantViolation]] = field(default_factory=list)
    #: Events applied, per kind.
    event_kinds: dict[str, int] = field(default_factory=dict)
    final_failed_nodes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def drive_trace(
    engine,
    state,
    trace: Trace,
    *,
    seed: int = 0,
    lockstep_engine=None,
    stop_on_violation: bool = True,
) -> DriveResult:
    """Replay ``trace`` through ``engine`` with the oracle after every round.

    ``state`` is mutated (pass a fresh one).  A convergence round runs
    first, as in production.  After every reconcile round the per-state
    invariants are checked; whenever the failed set is empty the
    full-recovery invariant is checked too.  With ``lockstep_engine`` a
    twin copy of the state is driven through it and
    ``incremental-equivalence`` is checked per round.
    """
    trace.validate()
    result = DriveResult()
    engine.reset()
    engine.reconcile(state, force=True)  # converge the pre-scenario placement
    twin = None
    if lockstep_engine is not None:
        twin = state.copy()
        lockstep_engine.reset()
        lockstep_engine.reconcile(twin, force=True)

    def record(time: float, found: list[InvariantViolation]) -> bool:
        result.violations.extend((time, violation) for violation in found)
        return stop_on_violation and bool(found)

    if record(0.0, check_state(state, recovered=True)):
        result.final_failed_nodes = state.failed_count
        return result

    for time_point, events in trace.steps():
        for event in events:
            result.event_kinds[event.kind] = result.event_kinds.get(event.kind, 0) + 1
            apply_trace_event(state, event, seed=seed)
            if twin is not None:
                apply_trace_event(twin, event, seed=seed)
        engine.reconcile(state)
        result.steps += 1
        found = check_state(state, recovered=True)
        if twin is not None:
            lockstep_engine.reconcile(twin)
            found.extend(check_equivalence(state, twin))
        if record(time_point, found):
            break
    result.final_failed_nodes = state.failed_count
    return result


# -- shrinking -----------------------------------------------------------------


def shrink_trace(
    trace: Trace,
    predicate: Callable[[list[TraceEvent]], bool],
    *,
    max_attempts: int = 400,
) -> Trace:
    """Minimize ``trace`` while ``predicate`` (still fails) holds.

    Deterministic ddmin-style delta debugging over the event list: remove
    chunks at halving granularity, keeping any removal that still fails,
    down to single events.  ``predicate`` receives a candidate event list
    and must return ``True`` when the candidate still reproduces the
    original violation (callers pin the invariant name so shrinking cannot
    drift onto a different bug).  The result carries the input's metadata.
    """
    events = list(trace.events)
    attempts = 0
    chunk = max(1, len(events) // 2)
    while attempts < max_attempts:
        removed = False
        index = 0
        while index < len(events) and attempts < max_attempts:
            candidate = events[:index] + events[index + chunk :]
            attempts += 1
            if candidate and predicate(candidate):
                events = candidate
                removed = True
            else:
                index += chunk
        if chunk == 1 and not removed:
            break
        chunk = max(1, chunk // 2)
    return Trace(events=events, metadata=dict(trace.metadata))


# -- the search loop -----------------------------------------------------------


@dataclass
class FuzzViolation:
    """A found-and-shrunk invariant violation with its reproducer."""

    case: int
    seed: int
    invariant: str
    message: str
    time: float
    #: Minimal schema-v1 reproducer (metadata carries seed + invariant).
    reproducer: Trace
    events_before_shrink: int = 0

    def write(self, path) -> None:
        self.reproducer.write(path)


@dataclass
class FuzzReport:
    """The outcome of one fuzz campaign."""

    config: FuzzConfig
    cases: int = 0
    steps: int = 0
    violation: FuzzViolation | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def to_text(self) -> str:
        if self.ok:
            return (
                f"fuzz: OK — {self.cases} case(s), {self.steps} oracle-checked "
                f"round(s), no invariant violations (seed {self.config.seed})"
            )
        v = self.violation
        return (
            f"fuzz: FAIL — case {v.case} (seed {v.seed}) violated "
            f"{v.invariant!r} at t={v.time}: {v.message}\n"
            f"  reproducer: {len(v.reproducer)} event(s) "
            f"(shrunk from {v.events_before_shrink})"
        )


def _default_engine_factory(config: FuzzConfig):
    import repro.api as api

    return api.engine(config.objective, incremental=True)


def _lockstep_engine_factory(config: FuzzConfig):
    import repro.api as api

    return api.engine(config.objective, incremental=False)


def _first_violation(
    config: FuzzConfig,
    environment,
    events: list[TraceEvent],
    *,
    engine_factory,
    case_seed: int,
) -> tuple[float, InvariantViolation] | None:
    """Replay one candidate event list with fresh engines; first violation."""
    trace = Trace(events=list(events), metadata={"generator": "fuzz_candidate"})
    engine = engine_factory(config)
    lockstep = _lockstep_engine_factory(config) if config.lockstep else None
    result = drive_trace(
        engine,
        environment.fresh_state(),
        trace,
        seed=case_seed,
        lockstep_engine=lockstep,
    )
    return result.violations[0] if result.violations else None


def run_fuzz(
    config: FuzzConfig | None = None,
    *,
    engine_factory: Callable[[FuzzConfig], object] | None = None,
    environment=None,
    on_case: Callable[[int, int], None] | None = None,
) -> FuzzReport:
    """Search ``config.cases`` random event programs for invariant violations.

    ``engine_factory`` builds the engine under test per replay (the
    ``fault=`` hook for planted-defect tests: hand it a factory with a
    deliberately broken stage and the oracle will find it); the default is
    the stock incremental engine.  On the first violation the failing trace
    is shrunk to a minimal reproducer — re-checked to still trip the *same*
    invariant — and returned in the report; remaining cases are skipped.
    The whole run is a pure function of ``config``.
    """
    config = config if config is not None else FuzzConfig()
    factory = engine_factory if engine_factory is not None else _default_engine_factory
    if environment is None:
        from repro.adaptlab import build_environment

        environment = build_environment(
            node_count=config.node_count,
            n_apps=config.n_apps,
            target_utilization=config.target_utilization,
            seed=config.env_seed,
        )
    node_names = list(environment.state.nodes)
    report = FuzzReport(config=config)
    for case in range(config.cases):
        case_seed = config.case_seed(case)
        program = random_program(node_names, horizon=config.horizon, seed=case_seed)
        engine = factory(config)
        lockstep = _lockstep_engine_factory(config) if config.lockstep else None
        result = drive_trace(
            engine,
            environment.fresh_state(),
            program,
            seed=case_seed,
            lockstep_engine=lockstep,
        )
        report.cases += 1
        report.steps += result.steps
        if on_case is not None:
            on_case(case, result.steps)
        if result.ok:
            continue

        time_point, violation = result.violations[0]
        invariant = violation.invariant

        def still_fails(events: list[TraceEvent]) -> bool:
            found = _first_violation(
                config,
                environment,
                events,
                engine_factory=factory,
                case_seed=case_seed,
            )
            return found is not None and found[1].invariant == invariant

        shrunk = shrink_trace(
            program, still_fails, max_attempts=config.max_shrink_attempts
        )
        shrunk.metadata = {
            "generator": "fuzz_reproducer",
            "seed": case_seed,
            "fuzz_seed": config.seed,
            "case": case,
            "invariant": invariant,
            "nodes": config.node_count,
            "apps": config.n_apps,
            "env_seed": config.env_seed,
            "objective": config.objective,
            "lockstep": config.lockstep,
            "events_before_shrink": len(program),
        }
        report.violation = FuzzViolation(
            case=case,
            seed=case_seed,
            invariant=invariant,
            message=violation.message,
            time=time_point,
            reproducer=shrunk.validate(),
            events_before_shrink=len(program),
        )
        break
    return report


def replay_reproducer(
    trace: Trace,
    config: FuzzConfig | None = None,
    *,
    engine_factory: Callable[[FuzzConfig], object] | None = None,
    environment=None,
) -> list[tuple[float, InvariantViolation]]:
    """Re-run a reproducer trace under the oracle; return its violations.

    ``config`` defaults to one rebuilt from the reproducer's metadata (the
    environment shape and seeds :func:`run_fuzz` recorded), so a reproducer
    file is self-contained: load it, replay it, observe the same violation.
    """
    meta = trace.metadata
    if config is None:
        config = FuzzConfig(
            node_count=int(meta.get("nodes", FuzzConfig.node_count)),
            n_apps=int(meta.get("apps", FuzzConfig.n_apps)),
            env_seed=int(meta.get("env_seed", FuzzConfig.env_seed)),
            objective=str(meta.get("objective", FuzzConfig.objective)),
            lockstep=bool(meta.get("lockstep", True)),
            seed=int(meta.get("fuzz_seed", 0)),
        )
    factory = engine_factory if engine_factory is not None else _default_engine_factory
    if environment is None:
        from repro.adaptlab import build_environment

        environment = build_environment(
            node_count=config.node_count,
            n_apps=config.n_apps,
            target_utilization=config.target_utilization,
            seed=config.env_seed,
        )
    case_seed = int(meta.get("seed", config.seed))
    engine = factory(config)
    lockstep = _lockstep_engine_factory(config) if config.lockstep else None
    result = drive_trace(
        engine,
        environment.fresh_state(),
        trace,
        seed=case_seed,
        lockstep_engine=lockstep,
    )
    return result.violations


__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "FuzzViolation",
    "DriveResult",
    "drive_trace",
    "random_program",
    "refail_interleaving",
    "replay_reproducer",
    "run_fuzz",
    "shrink_trace",
]
