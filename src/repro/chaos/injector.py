"""Failure injection primitives for chaos testing.

The chaos-testing service (§5) verifies that an application behaves
correctly under its declared criticality tags: when low-criticality
microservices are turned off, the critical services must keep serving.  The
injector enumerates degradation scenarios — which microservices to disable —
at configurable degrees of failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

import numpy as np

from repro.apps.base import AppTemplate
from repro.criticality import CriticalityTag


@dataclass(frozen=True, slots=True)
class DegradationScenario:
    """One chaos experiment: the microservices that are turned off."""

    disabled: tuple[str, ...]
    description: str = ""

    def serving_set(self, template: AppTemplate) -> set[str]:
        return set(template.application.microservices) - set(self.disabled)


class ChaosInjector:
    """Generates degradation scenarios for an application template."""

    def __init__(self, template: AppTemplate, seed: int = 0) -> None:
        self.template = template
        self._rng = np.random.default_rng(seed)

    # -- scenario generators --------------------------------------------------------
    def criticality_level_scenarios(self) -> Iterator[DegradationScenario]:
        """Turn off everything below each criticality level, one level at a time.

        This is the paper's primary validation: the application must keep
        its critical service when all C>k microservices are off.
        """
        app = self.template.application
        levels = sorted({ms.criticality.level for ms in app})
        for level in levels:
            disabled = tuple(
                sorted(name for name, ms in app.microservices.items() if ms.criticality.level > level)
            )
            if disabled:
                yield DegradationScenario(
                    disabled=disabled,
                    description=f"disable everything below C{level}",
                )

    def single_service_scenarios(self, max_level: int = 1) -> Iterator[DegradationScenario]:
        """Turn off one non-critical microservice at a time."""
        app = self.template.application
        for name, ms in sorted(app.microservices.items()):
            if ms.criticality > CriticalityTag(max_level):
                yield DegradationScenario(
                    disabled=(name,), description=f"disable {name} ({ms.criticality})"
                )

    def pairwise_scenarios(self, max_level: int = 2, limit: int = 20) -> Iterator[DegradationScenario]:
        """Turn off pairs of non-critical microservices (bounded)."""
        app = self.template.application
        candidates = sorted(
            name for name, ms in app.microservices.items() if ms.criticality > CriticalityTag(max_level)
        )
        for count, pair in enumerate(combinations(candidates, 2)):
            if count >= limit:
                return
            yield DegradationScenario(disabled=pair, description=f"disable {pair[0]}+{pair[1]}")

    def random_scenarios(
        self, degree: float, count: int = 5, protect_critical: bool = True
    ) -> Iterator[DegradationScenario]:
        """Disable a random ``degree`` fraction of microservices.

        With ``protect_critical`` the C1 set is never disabled, modelling a
        failure Phoenix has already mitigated; without it the scenario models
        an unmitigated infrastructure failure.
        """
        if not 0.0 <= degree <= 1.0:
            raise ValueError("degree must be within [0, 1]")
        app = self.template.application
        names = sorted(app.microservices)
        eligible = [
            n for n in names if not (protect_critical and app.criticality_of(n).level == 1)
        ]
        k = int(round(degree * len(names)))
        for index in range(count):
            if k == 0 or not eligible:
                yield DegradationScenario(disabled=(), description="no-op")
                continue
            chosen = self._rng.choice(eligible, size=min(k, len(eligible)), replace=False)
            yield DegradationScenario(
                disabled=tuple(sorted(str(c) for c in chosen)),
                description=f"random degree={degree:.0%} #{index}",
            )
