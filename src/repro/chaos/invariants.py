"""Reusable invariant oracle: what must hold after *every* reconcile round.

The chaos checks (:mod:`repro.chaos.storm`, :mod:`repro.chaos.cell_outage`)
each assert a scenario-specific outcome.  This module factors the
scenario-independent part out into one oracle the property-based fuzzer
(:mod:`repro.chaos.fuzz`), the corpus runner (:mod:`repro.corpus`) and the
lockstep equivalence tests all share.  The invariants, checkable against any
:class:`~repro.cluster.state.ClusterState` or
:class:`~repro.fleet.engine.FleetEngine` after any reconcile round:

``capacity-overcommit``
    No node's used resources ever exceed its capacity (beyond float
    tolerance) — the packing contract, healthy or failed.
``placement-consistency``
    The assignment map, the per-node reverse index, the usage accounting
    and the running-replica counters all agree with a brute-force
    re-derivation; in particular no replica is placed on two nodes.
``identity-consistency``
    Every assigned replica references a known application/microservice with
    a valid replica index and a sane criticality tag, and the active-set
    view matches its definition (*all* replicas on healthy nodes).
``full-recovery-availability``
    Once every node has recovered and the engine has reconciled, critical
    service availability is 1.0 — nothing stays stranded (the paper's
    bottom-line recovery claim).
``incremental-equivalence``
    Two engines driven through the same scenario — one incremental, one
    full-recompute — end every round with identical failed sets and
    identical replica assignments (the incremental scheduler's byte-identity
    contract, checked via :func:`check_equivalence`).
``spillover-conservation``
    Fleet only: the spillover ledger and the clone applications actually
    present in donor cells are a bijection — every clone is accounted for
    by exactly one ledger entry on its recorded donor, so clones are
    planned and released exactly once.
``fault-recovery-equivalence``
    Infra-chaos only (:mod:`repro.chaos.infra`): a run whose *machinery*
    faulted — shard workers killed, hung or corrupting frames mid-round,
    with the supervisor restarting or degrading them — produces results
    byte-identical to its fault-free twin.  Reported by the infra fuzzer's
    digest comparison rather than a ``check_*`` function, since it is a
    property of two runs, not of one state.

``check_*`` functions return a list of :class:`InvariantViolation` (empty =
holds); ``verify_*`` wrappers raise :class:`InvariantError` instead, for
use as test assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.state import ClusterState

#: Every invariant name the oracle can report, in documentation order.
INVARIANTS = (
    "capacity-overcommit",
    "placement-consistency",
    "identity-consistency",
    "full-recovery-availability",
    "incremental-equivalence",
    "spillover-conservation",
    "fault-recovery-equivalence",
)

#: Resource-accounting tolerance (matches the packer's assign tolerance).
CAPACITY_TOLERANCE = 1e-6
#: Availability tolerance for the full-recovery invariant.
AVAILABILITY_TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One broken invariant, anchored to the object that broke it."""

    invariant: str
    message: str
    #: Node / cell / application the violation anchors to (display only).
    subject: str | None = None

    def __str__(self) -> str:
        anchor = f" ({self.subject})" if self.subject else ""
        return f"[{self.invariant}]{anchor} {self.message}"


class InvariantError(AssertionError):
    """Raised by the ``verify_*`` wrappers when any invariant is violated."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = list(violations)
        super().__init__("; ".join(str(v) for v in self.violations))


def _violation(invariant: str, message: str, subject: str | None = None) -> InvariantViolation:
    return InvariantViolation(invariant=invariant, message=message, subject=subject)


# -- per-state invariants ------------------------------------------------------


def check_capacity(
    state: ClusterState, *, tolerance: float = CAPACITY_TOLERANCE
) -> list[InvariantViolation]:
    """``capacity-overcommit``: no node uses more than it has."""
    out: list[InvariantViolation] = []
    for name, node in state.nodes.items():
        used = state.used_on(name)
        cap = node.capacity
        if used.cpu > cap.cpu + tolerance or used.memory > cap.memory + tolerance:
            out.append(
                _violation(
                    "capacity-overcommit",
                    f"node {name} uses {used} of capacity {cap}",
                    subject=name,
                )
            )
    return out


def check_placement(
    state: ClusterState, *, tolerance: float = CAPACITY_TOLERANCE
) -> list[InvariantViolation]:
    """``placement-consistency``: indexes and counters match brute force."""
    out: list[InvariantViolation] = []
    assignments = dict(state.assignments)

    # Reverse index vs assignment map: every replica on exactly one node.
    seen: dict = {}
    for name in state.nodes:
        for replica in state.replicas_on(name):
            if replica in seen:
                out.append(
                    _violation(
                        "placement-consistency",
                        f"replica {replica} is placed on both {seen[replica]} and {name}",
                        subject=name,
                    )
                )
            seen[replica] = name
    if seen != assignments:
        missing = sorted(set(assignments) - set(seen))[:3]
        extra = sorted(set(seen) - set(assignments))[:3]
        moved = sorted(
            r for r in set(seen) & set(assignments) if seen[r] != assignments[r]
        )[:3]
        out.append(
            _violation(
                "placement-consistency",
                "assignment map and per-node index disagree "
                f"(missing from index: {missing}; extra: {extra}; moved: {moved})",
            )
        )

    # Usage accounting: recompute per-node used resources from assignments.
    # Replicas with unresolvable identities are skipped here — they are the
    # identity check's findings, and crashing the oracle on them would hide
    # every other violation of a corrupt state.
    used_cpu: dict[str, float] = {}
    used_mem: dict[str, float] = {}
    for replica, node_name in assignments.items():
        try:
            demand = state.demand_of(replica.app, replica.microservice)
        except (KeyError, AttributeError):
            continue
        used_cpu[node_name] = used_cpu.get(node_name, 0.0) + demand.cpu
        used_mem[node_name] = used_mem.get(node_name, 0.0) + demand.memory
    for name in state.nodes:
        cached = state.used_on(name)
        cpu = used_cpu.get(name, 0.0)
        mem = used_mem.get(name, 0.0)
        if abs(cached.cpu - cpu) > tolerance or abs(cached.memory - mem) > tolerance:
            out.append(
                _violation(
                    "placement-consistency",
                    f"node {name} usage counter {cached} != recomputed "
                    f"({cpu:.6f}, {mem:.6f})",
                    subject=name,
                )
            )

    # Running counters: recompute replicas-on-healthy-nodes per microservice.
    recounted: dict[tuple[str, str], int] = {}
    for replica, node_name in assignments.items():
        if not state.node(node_name).failed:
            key = (replica.app, replica.microservice)
            recounted[key] = recounted.get(key, 0) + 1
    cached_counts = state.running_replica_counts()
    if recounted != cached_counts:
        diff = sorted(
            key
            for key in set(recounted) | set(cached_counts)
            if recounted.get(key, 0) != cached_counts.get(key, 0)
        )[:3]
        out.append(
            _violation(
                "placement-consistency",
                f"running-replica counters drifted from brute-force recount "
                f"(first differing microservices: {diff})",
            )
        )
    return out


def check_identity(state: ClusterState) -> list[InvariantViolation]:
    """``identity-consistency``: assignments reference real, sanely tagged work."""
    out: list[InvariantViolation] = []
    apps = state.applications
    for replica in state.assignments:
        app = apps.get(replica.app)
        if app is None:
            out.append(
                _violation(
                    "identity-consistency",
                    f"replica {replica} references unknown application {replica.app!r}",
                    subject=replica.app,
                )
            )
            continue
        if replica.microservice not in app.microservices:
            out.append(
                _violation(
                    "identity-consistency",
                    f"replica {replica} references unknown microservice "
                    f"{replica.microservice!r} of {replica.app}",
                    subject=replica.app,
                )
            )
            continue
        ms = app.get(replica.microservice)
        if not 0 <= replica.replica < ms.replicas:
            out.append(
                _violation(
                    "identity-consistency",
                    f"replica index {replica.replica} out of range "
                    f"[0, {ms.replicas}) for {replica.app}/{replica.microservice}",
                    subject=replica.app,
                )
            )
    for app_name, app in apps.items():
        for ms in app:
            level = ms.criticality.level
            if not isinstance(level, int) or level < 1:
                out.append(
                    _violation(
                        "identity-consistency",
                        f"{app_name}/{ms.name} carries invalid criticality "
                        f"level {level!r}",
                        subject=app_name,
                    )
                )
    # Active-set view must match its definition: all replicas healthy.
    active = state.active_microservices()
    for app_name, app in apps.items():
        active_set = active.get(app_name, set())
        for ms in app:
            expected = state.running_replicas(app_name, ms.name) >= ms.replicas
            if (ms.name in active_set) != expected:
                out.append(
                    _violation(
                        "identity-consistency",
                        f"active-set view disagrees with running counters for "
                        f"{app_name}/{ms.name} (view: {ms.name in active_set}, "
                        f"counters: {expected})",
                        subject=app_name,
                    )
                )
    return out


def check_full_recovery(
    state: ClusterState,
    *,
    reference: ClusterState | None = None,
    tolerance: float = AVAILABILITY_TOLERANCE,
) -> list[InvariantViolation]:
    """``full-recovery-availability``: no failures left => availability 1.0.

    A no-op (vacuously true) while any node is still failed; call it after
    the final reconcile of a scenario that ends fully recovered.
    """
    if state.failed_count:
        return []
    from repro.adaptlab.metrics import evaluate_state

    evaluated = evaluate_state(state, reference=reference if reference is not None else state)
    availability = evaluated.critical_service_availability
    if availability < 1.0 - tolerance:
        lacking = sorted(
            (app, ms)
            for app, active in state.active_microservices().items()
            for ms in set(state.applications[app].microservices) - active
        )[:3]
        return [
            _violation(
                "full-recovery-availability",
                f"availability {availability:.6f} < 1.0 with zero failed nodes "
                f"(first inactive microservices: {lacking})",
            )
        ]
    return []


def check_state(
    state: ClusterState,
    *,
    reference: ClusterState | None = None,
    tolerance: float = CAPACITY_TOLERANCE,
    recovered: bool = False,
) -> list[InvariantViolation]:
    """Every per-state invariant; ``recovered=True`` adds the recovery check."""
    out = check_capacity(state, tolerance=tolerance)
    out.extend(check_placement(state, tolerance=tolerance))
    out.extend(check_identity(state))
    if recovered:
        out.extend(check_full_recovery(state, reference=reference))
    return out


def check_equivalence(
    state_a: ClusterState,
    state_b: ClusterState,
    *,
    labels: tuple[str, str] = ("incremental", "full"),
) -> list[InvariantViolation]:
    """``incremental-equivalence``: two lockstep states are byte-identical.

    Compares the failed sets and the full replica->node assignment maps of
    two states that were driven through the same scenario by different
    engine configurations (incremental vs full recompute, serial vs
    sharded).  Assignment equality plus each state's own
    ``placement-consistency`` implies every derived view agrees too.
    """
    out: list[InvariantViolation] = []
    failed_a, failed_b = state_a.failed_names(), state_b.failed_names()
    if failed_a != failed_b:
        out.append(
            _violation(
                "incremental-equivalence",
                f"failed sets diverged: only-{labels[0]}="
                f"{sorted(failed_a - failed_b)[:3]}, only-{labels[1]}="
                f"{sorted(failed_b - failed_a)[:3]}",
            )
        )
    assignments_a = dict(state_a.assignments)
    assignments_b = dict(state_b.assignments)
    if assignments_a != assignments_b:
        diff = sorted(
            replica
            for replica in set(assignments_a) | set(assignments_b)
            if assignments_a.get(replica) != assignments_b.get(replica)
        )[:3]
        out.append(
            _violation(
                "incremental-equivalence",
                f"assignments diverged between {labels[0]} and {labels[1]} "
                f"engines (first differing replicas: {diff})",
            )
        )
    return out


# -- fleet invariants ----------------------------------------------------------


def check_spillover_conservation(fleet) -> list[InvariantViolation]:
    """``spillover-conservation``: ledger <-> hosted clones is a bijection."""
    from repro.fleet.summary import clone_source, is_clone

    out: list[InvariantViolation] = []
    ledger = fleet.spillovers
    hosted: dict[tuple[str, str], list[str]] = {}
    for cell in fleet.cells:
        for app_name in cell.state.applications:
            if not is_clone(app_name):
                continue
            app, source_cell = clone_source(app_name)
            hosted.setdefault((source_cell, app), []).append(cell.name)
    for key, cells in sorted(hosted.items()):
        source_cell, app = key
        if len(cells) > 1:
            out.append(
                _violation(
                    "spillover-conservation",
                    f"clone of {app} (from {source_cell}) hosted in "
                    f"{len(cells)} cells at once: {sorted(cells)}",
                    subject=app,
                )
            )
        entry = ledger.get(key)
        if entry is None:
            out.append(
                _violation(
                    "spillover-conservation",
                    f"clone of {app} (from {source_cell}) hosted in "
                    f"{cells[0]} without a ledger entry — released or never "
                    f"planned",
                    subject=app,
                )
            )
        elif entry.donor not in cells:
            out.append(
                _violation(
                    "spillover-conservation",
                    f"ledger records donor {entry.donor} for {app} (from "
                    f"{source_cell}) but the clone lives in {sorted(cells)}",
                    subject=app,
                )
            )
    for key, entry in sorted(ledger.items()):
        if key not in hosted:
            source_cell, app = key
            out.append(
                _violation(
                    "spillover-conservation",
                    f"ledger entry for {app} (from {source_cell}, donor "
                    f"{entry.donor}) has no hosted clone — double release",
                    subject=app,
                )
            )
    return out


def check_fleet(
    fleet, *, tolerance: float = CAPACITY_TOLERANCE, recovered: bool = False
) -> list[InvariantViolation]:
    """Every invariant over a :class:`~repro.fleet.engine.FleetEngine`.

    Per-cell state invariants plus spillover conservation; with
    ``recovered=True`` the recovery check runs per cell (only meaningful
    when every cell ended with zero failed nodes).
    """
    out: list[InvariantViolation] = []
    for cell in fleet.cells:
        for violation in check_state(
            cell.state, tolerance=tolerance, recovered=recovered
        ):
            out.append(
                _violation(
                    violation.invariant,
                    f"cell {cell.name}: {violation.message}",
                    subject=cell.name,
                )
            )
    out.extend(check_spillover_conservation(fleet))
    return out


# -- dispatch + assertion wrappers --------------------------------------------


def check_invariants(target, **kwargs) -> list[InvariantViolation]:
    """Check whatever ``target`` is: a cluster state or a fleet engine."""
    if hasattr(target, "cells") and callable(getattr(target, "plan_spillover", None)):
        return check_fleet(target, **kwargs)
    if isinstance(target, ClusterState):
        return check_state(target, **kwargs)
    raise TypeError(
        f"cannot check invariants of {type(target).__name__}: expected a "
        "ClusterState or a FleetEngine"
    )


def verify_invariants(target, **kwargs) -> None:
    """Assert-style twin of :func:`check_invariants`."""
    violations = check_invariants(target, **kwargs)
    if violations:
        raise InvariantError(violations)
