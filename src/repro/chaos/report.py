"""Chaos test reports."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ScenarioResult:
    """Outcome of one degradation scenario."""

    description: str
    disabled: tuple[str, ...]
    critical_service_available: bool
    utility_score: float
    passed: bool


@dataclass
class ChaosReport:
    """Aggregated results of a chaos test run for one application."""

    app: str
    critical_request: str
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> dict[str, object]:
        return {
            "app": self.app,
            "critical_request": self.critical_request,
            "scenarios": len(self.results),
            "passed": sum(r.passed for r in self.results),
            "failed": len(self.failures),
            "verdict": "PASS" if self.passed else "FAIL",
        }

    def to_text(self) -> str:
        """Human-readable report (what would be surfaced to developers)."""
        lines = [f"Chaos report for {self.app} (critical request: {self.critical_request})"]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            lines.append(
                f"  [{status}] {result.description}: critical="
                f"{result.critical_service_available} utility={result.utility_score:.2f}"
            )
        lines.append(f"Verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)
