"""Infrastructure fault injection: composable fault plans + the infra fuzzer.

The chaos layer's other fuzzer (:mod:`repro.chaos.fuzz`) attacks the
*workload* — random failure/recovery programs against a correct engine.
This module attacks the *infrastructure*: worker processes are killed,
hung and made to emit corrupt frames while the self-healing shard pool
(:mod:`repro.fleet.pool`) recovers, and the oracle asserts the new
``fault-recovery-equivalence`` invariant — a faulted, supervised run must
be byte-identical to its fault-free serial twin — plus the standard fleet
invariants on the survivor.

Building blocks:

* :class:`WorkerFault` / :class:`FaultPlan` — a declarative, JSON-able
  fault schedule.  A plan plugs straight into the ``fault=`` hook of
  :class:`~repro.fleet.pool.ShardPool` (via ``FleetEngine._shard_fault``)
  through its ``for_shard(shard, incarnation)`` method; the serve layer
  reads ``wal_crash_round`` / ``ws_drop_after`` for its own fault points.
* :func:`run_infra_fuzz` — the seeded campaign (behind
  ``python -m repro fuzz --infra``): each case derives a fault plan and a
  workload from the case seed and drives either a live reconcile loop or a
  sharded replay against a fault-free twin.  Everything is a pure function
  of the config — byte-identical reports and reproducer records on rerun.
* :class:`AmnesicRestartPool` — a deliberately broken pool whose restarts
  skip the recovery journal (the classic restore-from-wrong-checkpoint
  bug).  It exists so tests can prove the fuzzer *finds* supervisor bugs,
  not merely passes correct code.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.fleet.config import FleetConfig
from repro.fleet.engine import FleetEngine
from repro.fleet.pool import ShardPool, ShardSupervisor
from repro.fleet.replay import FleetReplayer
from repro.serve.session import fleet_digest
from repro.traces import fleet_scenario

#: Fault kinds a worker process can be asked to simulate.
FAULT_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled fault in one worker shard.

    ``command`` counts messages *received by that incarnation* (1-based);
    ``incarnations`` lists the incarnations the fault fires in (``None``
    means every incarnation — the crash-loop case).  ``mode`` selects the
    frame damage for ``corrupt`` faults (``"flip"`` or ``"truncate"``).
    """

    kind: str
    shard: int
    command: int
    incarnations: tuple[int, ...] | None = (0,)
    mode: str = "flip"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (choose {FAULT_KINDS})")
        if self.command < 1:
            raise ValueError("command is 1-based; must be >= 1")
        if self.kind == "corrupt" and self.mode not in ("flip", "truncate"):
            raise ValueError(f"unknown corrupt mode {self.mode!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A composable infrastructure fault schedule.

    ``workers`` drive the shard pool's fault hook; ``wal_crash_round``
    (crash the serve process after the WAL append, before the round
    applies) and ``ws_drop_after`` (drop a serve WebSocket after N frames)
    are read by the serve layer.  Plans are plain data: JSON round-trips
    via :meth:`to_records` / :meth:`from_records` keep fuzz reproducers
    self-contained.
    """

    workers: tuple[WorkerFault, ...] = ()
    wal_crash_round: int | None = None
    ws_drop_after: int | None = None

    def for_shard(self, shard: int, incarnation: int) -> list[tuple]:
        """The pool-facing view: ``(kind, nth, mode)`` for one incarnation."""
        return [
            (fault.kind, fault.command, fault.mode)
            for fault in self.workers
            if fault.shard == shard
            and (fault.incarnations is None or incarnation in fault.incarnations)
        ]

    def to_records(self) -> dict:
        return {
            "workers": [
                {
                    "kind": f.kind,
                    "shard": f.shard,
                    "command": f.command,
                    "incarnations": None
                    if f.incarnations is None
                    else list(f.incarnations),
                    "mode": f.mode,
                }
                for f in self.workers
            ],
            "wal_crash_round": self.wal_crash_round,
            "ws_drop_after": self.ws_drop_after,
        }

    @classmethod
    def from_records(cls, record: dict) -> "FaultPlan":
        return cls(
            workers=tuple(
                WorkerFault(
                    kind=item["kind"],
                    shard=int(item["shard"]),
                    command=int(item["command"]),
                    incarnations=None
                    if item.get("incarnations") is None
                    else tuple(int(i) for i in item["incarnations"]),
                    mode=item.get("mode", "flip"),
                )
                for item in record.get("workers", ())
            ),
            wal_crash_round=record.get("wal_crash_round"),
            ws_drop_after=record.get("ws_drop_after"),
        )


def random_fault_plan(
    seed: int, *, shards: int = 2, include_hangs: bool = True
) -> FaultPlan:
    """A seeded random worker-fault schedule (pure function of the inputs).

    One or two faults per plan: kills and corrupt frames at small command
    indexes, at most one hang (each hang costs one supervisor deadline of
    wall-clock), and an occasional every-incarnation kill to exercise the
    crash-loop → degrade path.
    """
    rng = random.Random(seed)
    kinds = ["kill", "kill", "corrupt"] + (["hang"] if include_hangs else [])
    faults: list[WorkerFault] = []
    hang_used = False
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(kinds)
        if kind == "hang":
            if hang_used:
                kind = "kill"
            hang_used = True
        incarnations: tuple[int, ...] | None = (0,)
        if kind == "kill" and rng.random() < 0.25:
            incarnations = None  # crash loop: dies in every incarnation
        faults.append(
            WorkerFault(
                kind=kind,
                shard=rng.randrange(shards),
                command=rng.randint(2, 6),
                incarnations=incarnations,
                mode=rng.choice(("flip", "truncate")),
            )
        )
    return FaultPlan(workers=tuple(faults))


# -- a planted supervisor bug ---------------------------------------------------


class _AmnesicSupervisor(ShardSupervisor):
    """Restart policy with the journal replay *dropped* (deliberate bug)."""

    def _respawn(self, shard, *, reconcile: bool) -> None:
        if not reconcile and shard.journal is not None:
            shard.journal = []  # forget every completed command
        super()._respawn(shard, reconcile=reconcile)


class AmnesicRestartPool(ShardPool):
    """A :class:`ShardPool` whose restarts forget the shard's history.

    The restore-from-wrong-checkpoint bug, planted: a restarted
    replay-protocol worker restarts from the *initial* payload with no
    journal replay, so its state silently diverges from the serial twin.
    ``run_infra_fuzz(pool_class=AmnesicRestartPool)`` must catch this as a
    ``fault-recovery-equivalence`` violation — the oracle's own test.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.supervisor is not None:
            self.supervisor = _AmnesicSupervisor(self, self.supervisor.config)


# -- the campaign ---------------------------------------------------------------


@dataclass(frozen=True)
class InfraFuzzConfig:
    """One infra-chaos campaign: fleet shape, budget, and the master seed."""

    cases: int = 6
    cells: int = 3
    nodes_per_cell: int = 12
    n_apps: int = 2
    env_seed: int = 2025
    horizon: float = 900.0
    #: Live-reconcile cases run this many fleet rounds each.
    rounds: int = 8
    seed: int = 0
    workers: int = 2
    max_restarts: int = 2
    #: Supervisor deadline for hung workers; each injected hang costs this
    #: much wall-clock, so keep it small.
    shard_timeout: float = 2.0
    include_hangs: bool = True

    def case_seed(self, case: int) -> int:
        """The seed of case ``case`` — a pure function of the master seed."""
        return self.seed * 100_003 + case


@dataclass
class InfraViolation:
    """One found violation with its self-contained reproducer record."""

    case: int
    seed: int
    mode: str
    invariant: str
    message: str
    faults: dict = field(default_factory=dict)
    reproducer: dict = field(default_factory=dict)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.reproducer, handle, sort_keys=True, indent=2)
            handle.write("\n")


@dataclass
class InfraFuzzReport:
    """The outcome of one infra-chaos campaign."""

    config: InfraFuzzConfig
    cases: int = 0
    faults_injected: int = 0
    restarts_observed: int = 0
    degradations_observed: int = 0
    violation: InfraViolation | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def to_text(self) -> str:
        if self.ok:
            return (
                f"infra-fuzz: OK — {self.cases} case(s), "
                f"{self.faults_injected} fault(s) injected, "
                f"{self.restarts_observed} restart(s), "
                f"{self.degradations_observed} degradation(s); recovery "
                f"byte-identical throughout (seed {self.config.seed})"
            )
        v = self.violation
        return (
            f"infra-fuzz: FAIL — case {v.case} (seed {v.seed}, mode {v.mode}) "
            f"violated {v.invariant!r}: {v.message}"
        )


def _fleet_states(config: InfraFuzzConfig):
    from repro.adaptlab import build_environment

    return [
        build_environment(
            node_count=config.nodes_per_cell,
            n_apps=config.n_apps,
            seed=config.env_seed + index,
        ).fresh_state()
        for index in range(config.cells)
    ]


def _build_fleet(config: InfraFuzzConfig, *, supervised: bool) -> FleetEngine:
    fleet_config = FleetConfig(
        cells=config.cells,
        supervise=supervised,
        shard_timeout=config.shard_timeout,
        max_shard_restarts=config.max_restarts,
        shard_backoff=0.0,
    )
    fleet = FleetEngine(fleet_config, states=_fleet_states(config))
    fleet.reconcile(force=True)
    return fleet


def _observe(fleet: FleetEngine, report: InfraFuzzReport) -> None:
    from repro.fleet.events import ShardDegraded, ShardRestarted

    def on_event(event) -> None:
        if isinstance(event, ShardRestarted):
            report.restarts_observed += 1
        elif isinstance(event, ShardDegraded):
            report.degradations_observed += 1

    fleet.events.subscribe(on_event)


def _reproducer(config: InfraFuzzConfig, case: int, mode: str, plan: FaultPlan) -> dict:
    return {
        "generator": "infra_fuzz_reproducer",
        "case": case,
        "mode": mode,
        "seed": config.case_seed(case),
        "fuzz_seed": config.seed,
        "faults": plan.to_records(),
        "config": {
            "cells": config.cells,
            "nodes_per_cell": config.nodes_per_cell,
            "n_apps": config.n_apps,
            "env_seed": config.env_seed,
            "horizon": config.horizon,
            "rounds": config.rounds,
            "workers": config.workers,
            "max_restarts": config.max_restarts,
            "shard_timeout": config.shard_timeout,
        },
    }


def _reconcile_case(
    config: InfraFuzzConfig,
    case: int,
    plan: FaultPlan,
    report: InfraFuzzReport,
    pool_class,
) -> InfraViolation | None:
    """Live-reconcile mode: random churn + injected worker faults, with the
    supervised parallel fleet digest-compared to a fault-free serial twin
    after every round."""
    from repro.chaos.invariants import check_fleet

    case_seed = config.case_seed(case)
    rng = random.Random(case_seed)
    faulted = _build_fleet(config, supervised=True)
    twin = _build_fleet(config, supervised=True)  # same config, run serially
    faulted._shard_fault = plan
    faulted._pool_class = pool_class
    _observe(faulted, report)
    try:
        for round_index in range(config.rounds):
            for index in range(config.cells):
                probe = faulted.cells[index].state
                shadow = twin.cells[index].state
                healthy = sorted(n for n, node in probe.nodes.items() if not node.failed)
                failed = sorted(probe.failed_names())
                roll = rng.random()
                if roll < 0.45 and healthy:
                    picked = rng.sample(healthy, min(len(healthy), rng.randint(1, 3)))
                    probe.fail_nodes(picked)
                    shadow.fail_nodes(picked)
                elif roll < 0.75 and failed:
                    picked = rng.sample(failed, 1)
                    probe.recover_nodes(picked)
                    shadow.recover_nodes(picked)
            force = rng.random() < 0.1
            faulted.reconcile(force=force, workers=config.workers)
            twin.reconcile(force=force)
            if fleet_digest(faulted) != fleet_digest(twin):
                return InfraViolation(
                    case=case,
                    seed=case_seed,
                    mode="reconcile",
                    invariant="fault-recovery-equivalence",
                    message=(
                        f"fleet digest diverged from the fault-free twin at "
                        f"round {round_index}"
                    ),
                    faults=plan.to_records(),
                    reproducer=_reproducer(config, case, "reconcile", plan),
                )
        violations = check_fleet(faulted)
        if violations:
            first = violations[0]
            return InfraViolation(
                case=case,
                seed=case_seed,
                mode="reconcile",
                invariant=first.invariant,
                message=first.message,
                faults=plan.to_records(),
                reproducer=_reproducer(config, case, "reconcile", plan),
            )
    finally:
        faulted.close()
        twin.close()
    return None


def _replay_case(
    config: InfraFuzzConfig,
    case: int,
    plan: FaultPlan,
    report: InfraFuzzReport,
    pool_class,
) -> InfraViolation | None:
    """Sharded-replay mode: one fleet scenario replayed through faulted
    worker shards, metrics JSONL byte-compared against the serial replay."""
    case_seed = config.case_seed(case)
    scenario = fleet_scenario(
        config.cells,
        config.nodes_per_cell,
        horizon=config.horizon,
        mtbf=config.horizon / 3.0,
        seed=case_seed,
    )
    serial = _build_fleet(config, supervised=True)
    try:
        serial_jsonl = FleetReplayer(serial, seed=case_seed).run(scenario).to_jsonl()
    finally:
        serial.close()
    faulted = _build_fleet(config, supervised=True)
    faulted._shard_fault = plan
    faulted._pool_class = pool_class
    _observe(faulted, report)
    try:
        faulted_jsonl = (
            FleetReplayer(faulted, seed=case_seed, workers=config.workers)
            .run(scenario)
            .to_jsonl()
        )
    finally:
        faulted.close()
    # The metrics JSONL is the replay's entire observable output (with the
    # process executor the parent states intentionally go stale), so the
    # byte-compare IS the equivalence oracle here.
    if faulted_jsonl != serial_jsonl:
        return InfraViolation(
            case=case,
            seed=case_seed,
            mode="replay",
            invariant="fault-recovery-equivalence",
            message="metrics JSONL diverged from the fault-free serial replay",
            faults=plan.to_records(),
            reproducer=_reproducer(config, case, "replay", plan),
        )
    return None


def run_infra_fuzz(
    config: InfraFuzzConfig | None = None,
    *,
    pool_class: type | None = None,
    on_case=None,
) -> InfraFuzzReport:
    """Search ``config.cases`` seeded fault schedules for recovery bugs.

    Even cases run the live-reconcile mode, odd cases the sharded-replay
    mode, so both restart strategies (parent-state resync and journal
    replay) face every fault kind.  ``pool_class`` substitutes the shard
    pool implementation under test (hand it :class:`AmnesicRestartPool`
    and the campaign must fail — the planted-bug check in the tests and
    CI).  Stops at the first violation; the whole run is a pure function
    of ``config``.
    """
    config = config if config is not None else InfraFuzzConfig()
    report = InfraFuzzReport(config=config)
    for case in range(config.cases):
        plan = random_fault_plan(
            config.case_seed(case),
            shards=min(config.workers, config.cells),
            include_hangs=config.include_hangs,
        )
        report.faults_injected += len(plan.workers)
        runner = _reconcile_case if case % 2 == 0 else _replay_case
        violation = runner(config, case, plan, report, pool_class)
        report.cases += 1
        if on_case is not None:
            on_case(case, report)
        if violation is not None:
            report.violation = violation
            break
    return report


def replay_infra_case(record: dict, *, pool_class: type | None = None) -> InfraFuzzReport:
    """Re-run one reproducer record produced by :func:`run_infra_fuzz`.

    The record is self-contained (fault schedule + fleet shape + seeds);
    replaying it re-triggers the same violation, or returns an OK report
    if the bug has since been fixed.
    """
    params = record.get("config", {})
    config = InfraFuzzConfig(
        cases=1,
        cells=int(params.get("cells", InfraFuzzConfig.cells)),
        nodes_per_cell=int(params.get("nodes_per_cell", InfraFuzzConfig.nodes_per_cell)),
        n_apps=int(params.get("n_apps", InfraFuzzConfig.n_apps)),
        env_seed=int(params.get("env_seed", InfraFuzzConfig.env_seed)),
        horizon=float(params.get("horizon", InfraFuzzConfig.horizon)),
        rounds=int(params.get("rounds", InfraFuzzConfig.rounds)),
        seed=int(record.get("fuzz_seed", 0)),
        workers=int(params.get("workers", InfraFuzzConfig.workers)),
        max_restarts=int(params.get("max_restarts", InfraFuzzConfig.max_restarts)),
        shard_timeout=float(params.get("shard_timeout", InfraFuzzConfig.shard_timeout)),
    )
    case = int(record.get("case", 0))
    plan = FaultPlan.from_records(record.get("faults", {}))
    report = InfraFuzzReport(config=config)
    report.faults_injected = len(plan.workers)
    runner = _reconcile_case if record.get("mode") == "reconcile" else _replay_case
    report.cases = 1
    report.violation = runner(config, case, plan, report, pool_class)
    return report


__all__ = [
    "FAULT_KINDS",
    "AmnesicRestartPool",
    "FaultPlan",
    "InfraFuzzConfig",
    "InfraFuzzReport",
    "InfraViolation",
    "WorkerFault",
    "random_fault_plan",
    "replay_infra_case",
    "run_infra_fuzz",
]
