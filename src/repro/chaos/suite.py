"""The managed chaos-testing service (§5).

Before criticality tags reach production, developers run chaos tests that
turn off tagged microservices and check that (a) the application's critical
service stays available and (b) the end-user utility stays above a floor.
The suite uses the same load-generator/utility machinery as the evaluation,
so a template that passes chaos testing is diagonal-scaling compliant by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.apps.base import AppTemplate
from repro.apps.loadgen import LoadGenerator, LoadReport
from repro.chaos.injector import ChaosInjector, DegradationScenario
from repro.chaos.report import ChaosReport, ScenarioResult

#: A utility function scores the load report; the default is the normalized
#: utility rate (earned utility / maximum possible utility).
UtilityFunction = Callable[[LoadReport, AppTemplate], float]


def normalized_utility(report: LoadReport, template: AppTemplate) -> float:
    maximum = sum(r.rate * r.utility for r in template.request_types.values())
    if maximum <= 0:
        return 0.0
    return report.total_utility_rate / maximum


@dataclass
class ChaosTestingService:
    """Run degradation scenarios against an application template.

    Parameters
    ----------
    template:
        The application (deployment files + criticality tags, in the paper's
        terms).
    utility_function:
        Scores the load-generator output; defaults to normalized utility.
    min_utility:
        A scenario fails if utility drops below this floor even when the
        critical service stays up.
    """

    template: AppTemplate
    utility_function: UtilityFunction = normalized_utility
    min_utility: float = 0.0

    def run_scenario(self, scenario: DegradationScenario) -> ScenarioResult:
        generator = LoadGenerator(self.template)
        serving = scenario.serving_set(self.template)
        report = generator.report(serving)
        critical = self.template.critical_request().name
        critical_ok = report.critical_service_available(critical)
        utility = self.utility_function(report, self.template)
        return ScenarioResult(
            description=scenario.description,
            disabled=scenario.disabled,
            critical_service_available=critical_ok,
            utility_score=utility,
            passed=critical_ok and utility >= self.min_utility,
        )

    def run(
        self,
        scenarios: Iterable[DegradationScenario] | None = None,
        degrees: Iterable[float] = (0.1, 0.3, 0.5),
        seed: int = 0,
    ) -> ChaosReport:
        """Run a standard battery of scenarios (or a caller-provided one)."""
        injector = ChaosInjector(self.template, seed=seed)
        if scenarios is None:
            scenarios = [
                *injector.criticality_level_scenarios(),
                *injector.single_service_scenarios(),
                *(s for degree in degrees for s in injector.random_scenarios(degree, count=3)),
            ]
        report = ChaosReport(
            app=self.template.name, critical_request=self.template.critical_request().name
        )
        for scenario in scenarios:
            report.results.append(self.run_scenario(scenario))
        return report


def verify_tagging(template: AppTemplate, min_utility: float = 0.0, seed: int = 0) -> ChaosReport:
    """Convenience wrapper: run the standard chaos battery on a template."""
    return ChaosTestingService(template, min_utility=min_utility).run(seed=seed)
