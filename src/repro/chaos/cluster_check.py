"""Engine-driven chaos testing: degrade a real cluster, not just a template.

The template-level chaos suite (:mod:`repro.chaos.suite`) turns microservices
off *by decree* and replays load.  This module closes the loop through the
actual Phoenix pipeline: deploy the template on a simulated cluster, fail
nodes, let a :class:`~repro.api.engine.PhoenixEngine` reconcile, and verify
that the microservices backing the critical request survive whenever their
demand still fits the surviving capacity.

A tagging that passes the template suite but fails here is mis-tagged in a
way only the planner can see — e.g. a critical-path microservice tagged so
low that Phoenix legitimately turns it off under pressure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import repro.api as api
from repro.apps.base import AppTemplate
from repro.cluster.resources import Resources
from repro.cluster.state import build_uniform_cluster

#: Fractions of the cluster to fail, by default.
DEFAULT_FAILURE_FRACTIONS: tuple[float, ...] = (0.25, 0.5, 0.75)


@dataclass(frozen=True, slots=True)
class ClusterScenarioResult:
    """Outcome of one failure level driven through the engine."""

    failure_fraction: float
    failed_nodes: tuple[str, ...]
    surviving_cpu: float
    critical_demand_cpu: float
    #: Whether the critical set must fit: demand (cpu *and* memory) within
    #: the surviving capacity scaled by the packing-slack factor.  Near-100%
    #: bin-packing utilization legitimately fails on fragmentation, so only
    #: clear violations are counted.
    critical_fits: bool
    #: Critical microservices actually active after reconciliation.
    critical_active: tuple[str, ...]
    #: Critical microservices missing after reconciliation.
    critical_missing: tuple[str, ...]

    @property
    def passed(self) -> bool:
        """Pass iff the critical set survived — or provably could not fit."""
        return not self.critical_missing or not self.critical_fits


@dataclass
class ClusterChaosReport:
    """All failure levels for one template."""

    app: str
    critical_microservices: tuple[str, ...]
    results: list[ClusterScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[ClusterScenarioResult]:
        return [r for r in self.results if not r.passed]

    def to_text(self) -> str:
        lines = [
            f"Engine-driven chaos for {self.app}: "
            f"{'OK' if self.passed else 'FAILURES'} "
            f"(critical set: {', '.join(self.critical_microservices)})"
        ]
        for r in self.results:
            verdict = "ok  " if r.passed else "FAIL"
            detail = (
                f"critical set not guaranteed to pack ({r.critical_demand_cpu:.0f} cpu "
                f"demand vs {r.surviving_cpu:.0f} cpu survived, pre-slack)"
                if not r.critical_fits
                else f"missing: {', '.join(r.critical_missing) or '-'}"
            )
            lines.append(
                f"  [{verdict}] fail {r.failure_fraction:.0%} of nodes "
                f"({len(r.failed_nodes)} nodes) — {detail}"
            )
        return "\n".join(lines)


def verify_tagging_on_cluster(
    template: AppTemplate,
    node_count: int = 8,
    failure_fractions: tuple[float, ...] = DEFAULT_FAILURE_FRACTIONS,
    objective: str = "revenue",
    headroom: float = 1.25,
    packing_slack: float = 0.9,
) -> ClusterChaosReport:
    """Chaos-test a template's tags through the full Phoenix pipeline.

    For each failure fraction, a fresh uniform cluster sized to hold the
    template (total capacity = ``headroom`` × demand) is deployed through
    ``repro.api.engine(...)``, the first ``fraction`` of nodes are failed,
    the engine reconciles, and the critical request's microservices are
    checked against the surviving activation.  A scenario only *requires*
    the critical set to survive when its demand fits within
    ``packing_slack`` × the surviving capacity on both resources — beyond
    that, bin-packing fragmentation makes "unplaced" an honest outcome
    rather than a tagging error.
    """
    if node_count < 2:
        raise ValueError("node_count must be at least 2")
    if not 1.0 <= headroom:
        raise ValueError("headroom must be >= 1")
    if not 0.0 < packing_slack <= 1.0:
        raise ValueError("packing_slack must be in (0, 1]")
    app = template.application
    critical = tuple(sorted(template.critical_request().microservices))
    demand = app.total_demand()
    # Uniform nodes big enough that the whole app fits with headroom, and no
    # single microservice replica exceeds one node.
    per_replica_cpu = max(ms.resources.cpu for ms in app)
    per_replica_mem = max(ms.resources.memory for ms in app)
    node_cpu = max(demand.cpu * headroom / node_count, per_replica_cpu * headroom)
    node_mem = max(demand.memory * headroom / node_count, per_replica_mem * headroom, 1.0)
    critical_demand_cpu = sum(
        app.get(name).total_resources.cpu for name in critical if name in app
    )
    critical_demand_mem = sum(
        app.get(name).total_resources.memory for name in critical if name in app
    )

    report = ClusterChaosReport(app=app.name, critical_microservices=critical)
    for fraction in failure_fractions:
        if not 0.0 <= fraction < 1.0:
            raise ValueError("failure fractions must be within [0, 1)")
        state = build_uniform_cluster(
            node_count, Resources(cpu=node_cpu, memory=node_mem), applications=[app]
        )
        eng = api.engine(objective)
        eng.reconcile(state, force=True)  # steady-state placement

        failed = tuple(f"node-{i}" for i in range(math.floor(fraction * node_count)))
        if failed:
            state.fail_nodes(list(failed))
        eng.reconcile(state)  # failure detected -> degrade

        active = state.active_microservices().get(app.name, set())
        missing = tuple(name for name in critical if name not in active)
        surviving = state.total_capacity()
        fits = (
            critical_demand_cpu <= surviving.cpu * packing_slack + 1e-9
            and critical_demand_mem <= surviving.memory * packing_slack + 1e-9
        )
        report.results.append(
            ClusterScenarioResult(
                failure_fraction=fraction,
                failed_nodes=failed,
                surviving_cpu=surviving.cpu,
                critical_demand_cpu=critical_demand_cpu,
                critical_fits=fits,
                critical_active=tuple(name for name in critical if name in active),
                critical_missing=missing,
            )
        )
    return report
