"""Static validation of criticality tags (§7, "Adversarial or Incorrect
Criticality Tags").

Complementing the chaos-testing service (which *executes* degradation
scenarios), this module performs static checks that catch common tagging
mistakes before anything is deployed:

* **inverted dependencies** — a microservice is tagged more critical than a
  downstream service it strictly requires (its only path to its callees),
  so Phoenix could keep it running while turning off what it needs;
* **unreachable critical services** — a C1 microservice whose every upstream
  caller is less critical, so under degradation no traffic can reach it;
* **over-tagging** — the fraction of resources tagged C1 exceeds an operator
  threshold, which defeats the purpose of diagonal scaling;
* **single-upstream candidates** — untagged (implicitly C1) microservices
  with exactly one, less-critical upstream caller: the paper's §3.2 analysis
  identifies these as safe candidates for lower criticality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.application import Application


class AnomalyKind(enum.Enum):
    """Categories of tagging anomalies."""

    INVERTED_DEPENDENCY = "inverted-dependency"
    UNREACHABLE_CRITICAL = "unreachable-critical"
    OVER_TAGGED = "over-tagged"
    DOWNGRADE_CANDIDATE = "downgrade-candidate"


@dataclass(frozen=True, slots=True)
class TagAnomaly:
    """One finding of the validator."""

    kind: AnomalyKind
    microservice: str | None
    message: str

    @property
    def is_error(self) -> bool:
        """Errors break degradation correctness; the rest are advisory.

        An inverted dependency is advisory rather than an error because the
        caller may deliberately treat the callee as optional (HotelReservation's
        ``reservation -> user`` call is the paper's example: error handling lets
        reservations proceed as a guest).  Chaos testing is the authority on
        whether the application actually tolerates it.
        """
        return self.kind is AnomalyKind.UNREACHABLE_CRITICAL


@dataclass
class ValidationReport:
    """All anomalies found for one application."""

    app: str
    anomalies: list[TagAnomaly]

    @property
    def errors(self) -> list[TagAnomaly]:
        return [a for a in self.anomalies if a.is_error]

    @property
    def warnings(self) -> list[TagAnomaly]:
        return [a for a in self.anomalies if not a.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors

    def of_kind(self, kind: AnomalyKind) -> list[TagAnomaly]:
        return [a for a in self.anomalies if a.kind is kind]

    def to_text(self) -> str:
        lines = [f"Tag validation for {self.app}: {'OK' if self.ok else 'ERRORS'}"]
        for anomaly in self.anomalies:
            marker = "ERROR" if anomaly.is_error else "warn "
            lines.append(f"  [{marker}] {anomaly.kind.value}: {anomaly.message}")
        return "\n".join(lines)


def _inverted_dependencies(app: Application) -> list[TagAnomaly]:
    """Microservices whose *only* downstream dependency is less critical.

    If a microservice has exactly one callee and that callee is tagged less
    critical, degradation can remove the callee while keeping the caller,
    which usually breaks the caller's function.
    """
    findings = []
    for name in app.microservices:
        callees = app.successors(name)
        if len(callees) != 1:
            continue
        callee = callees[0]
        if app.criticality_of(callee) > app.criticality_of(name):
            findings.append(
                TagAnomaly(
                    kind=AnomalyKind.INVERTED_DEPENDENCY,
                    microservice=name,
                    message=(
                        f"{name} ({app.criticality_of(name)}) depends only on {callee} "
                        f"({app.criticality_of(callee)}), which may be turned off first"
                    ),
                )
            )
    return findings


def _unreachable_critical(app: Application) -> list[TagAnomaly]:
    """C1 microservices all of whose upstream callers are less critical."""
    findings = []
    for name in app.microservices:
        if app.criticality_of(name).level != 1:
            continue
        predecessors = app.predecessors(name)
        if not predecessors:
            continue
        if all(app.criticality_of(p).level > 1 for p in predecessors):
            findings.append(
                TagAnomaly(
                    kind=AnomalyKind.UNREACHABLE_CRITICAL,
                    microservice=name,
                    message=(
                        f"{name} is C1 but every caller "
                        f"({', '.join(predecessors)}) is less critical"
                    ),
                )
            )
    return findings


def _over_tagging(app: Application, max_critical_fraction: float) -> list[TagAnomaly]:
    total = app.total_demand().cpu
    if total <= 0:
        return []
    critical = sum(ms.total_resources.cpu for ms in app if ms.criticality.level == 1)
    fraction = critical / total
    if fraction > max_critical_fraction:
        return [
            TagAnomaly(
                kind=AnomalyKind.OVER_TAGGED,
                microservice=None,
                message=(
                    f"{fraction:.0%} of resources are tagged C1 "
                    f"(operator guidance: at most {max_critical_fraction:.0%})"
                ),
            )
        ]
    return []


def _downgrade_candidates(app: Application) -> list[TagAnomaly]:
    """§3.2 rule: single-upstream stubs tagged C1 are downgrade candidates."""
    findings = []
    for name in app.microservices:
        if app.criticality_of(name).level != 1:
            continue
        predecessors = app.predecessors(name)
        if len(predecessors) != 1:
            continue
        if app.successors(name):
            continue  # not a leaf stub
        caller = predecessors[0]
        if app.criticality_of(caller).level > 1:
            findings.append(
                TagAnomaly(
                    kind=AnomalyKind.DOWNGRADE_CANDIDATE,
                    microservice=name,
                    message=(
                        f"{name} is a C1 leaf served only by {caller} "
                        f"({app.criticality_of(caller)}); consider tagging it lower"
                    ),
                )
            )
    return findings


def validate_tags(app: Application, max_critical_fraction: float = 0.8) -> ValidationReport:
    """Run every static check against one application."""
    if not 0.0 < max_critical_fraction <= 1.0:
        raise ValueError("max_critical_fraction must be in (0, 1]")
    anomalies = [
        *_inverted_dependencies(app),
        *_unreachable_critical(app),
        *_over_tagging(app, max_critical_fraction),
        *_downgrade_candidates(app),
    ]
    return ValidationReport(app=app.name, anomalies=anomalies)
