"""Operator objectives used by the Phoenix planner's global ranking step.

The paper supports any monotonically increasing operator objective ``F`` and
evaluates two instances (§4):

* **Revenue** (PhoenixCost / LPCost): containers of applications with a
  higher willingness-to-pay per unit resource are ranked first.
* **Fairness** (PhoenixFair / LPFair): a water-filling max-min fair share is
  pre-computed per application, and in each round the container whose
  activation keeps its application closest to (but not beyond, unless slack
  remains) its fair share is ranked first.

Objectives implement a ``score`` method; *larger scores are ranked earlier*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.cluster.application import Application
from repro.cluster.microservice import Microservice


def water_fill_shares(demands: Mapping[str, float], capacity: float) -> dict[str, float]:
    """Compute max-min (water-filling) fair shares.

    Each application is entitled to ``capacity / n``; applications demanding
    less than their entitlement free up the excess, which is redistributed
    among the remaining applications, repeating until no excess remains.

    Parameters
    ----------
    demands:
        Application name -> total resource demand.
    capacity:
        Total resources available for distribution.

    Returns
    -------
    dict
        Application name -> fair share (never exceeding its demand).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    remaining = {app: max(0.0, demand) for app, demand in demands.items()}
    shares = {app: 0.0 for app in demands}
    available = capacity
    active = [app for app, demand in remaining.items() if demand > 0]
    while active and available > 1e-12:
        level = available / len(active)
        satisfied = [app for app in active if remaining[app] <= level + 1e-12]
        if not satisfied:
            for app in active:
                shares[app] += level
                remaining[app] -= level
            available = 0.0
            break
        for app in satisfied:
            shares[app] += remaining[app]
            available -= remaining[app]
            remaining[app] = 0.0
        active = [app for app in active if remaining[app] > 1e-12]
    return shares


class OperatorObjective(ABC):
    """Base class for operator objectives used during global ranking."""

    #: human-readable name used in results tables (e.g. "revenue", "fairness")
    name: str = "objective"

    #: Declare that ``score(app, ms, allocated)`` depends only on the
    #: candidate's *own* application entry in ``allocated`` (plus state fixed
    #: at :meth:`prepare` time).  The planner's lazy-rescore heap relies on
    #: this: activating a container only re-scores the application whose
    #: allocation changed.  Objectives that couple applications (reading
    #: other apps' allocations in ``score``) must leave this ``False``; the
    #: planner then falls back to the exact O(containers x apps) rescan loop
    #: in :mod:`repro.core.reference`.
    independent_scores: bool = False

    #: Stronger declaration: ``score`` depends *only* on the application and
    #: microservice — neither on ``allocated`` nor on any state installed by
    #: :meth:`prepare` (the planner additionally requires ``prepare`` to be
    #: un-overridden before trusting this).  With static scores the global
    #: merge order is a pure function of the applications, so the planner
    #: caches the merged ranked list across rounds and only recomputes the
    #: capacity-bounded activation prefix — byte-identical output, O(C) per
    #: round instead of O(C log A) heap work.
    static_scores: bool = False

    def prepare(self, applications: Mapping[str, Application], capacity: float) -> None:
        """Hook called once per planning round before any scoring.

        Objectives that need global pre-computation (e.g. fair shares)
        override this.  ``capacity`` is the aggregate healthy CPU capacity.
        """

    @abstractmethod
    def score(
        self,
        app: Application,
        microservice: Microservice,
        allocated: Mapping[str, float],
    ) -> float:
        """Score a candidate container.

        Parameters
        ----------
        app:
            The application the candidate belongs to.
        microservice:
            The candidate microservice.
        allocated:
            CPU units already granted to each application by previous
            ranking rounds (the planner updates this as it goes).

        Returns
        -------
        float
            Larger values are ranked earlier.
        """


def criticality_revenue_weight(level: int) -> float:
    """Relative revenue of a container as a function of its criticality.

    The paper assigns each microservice a utility/revenue value "that aligns
    with its criticality" (§6.1): business-critical containers generate most
    of the revenue, good-to-have features generate very little.  A
    ``1/level**2`` weighting captures that skew steeply enough that a C1
    container of a modestly priced application outranks the optional
    containers of premium applications, which is what lets PhoenixCost keep
    critical services available while maximizing revenue (Figures 5-7).
    """
    if level < 1:
        raise ValueError("criticality level must be >= 1")
    return 1.0 / (level * level)


def microservice_revenue_rate(app: Application, microservice: Microservice) -> float:
    """Revenue per unit time earned while ``microservice`` is active."""
    return (
        app.price_per_unit
        * microservice.total_resources.cpu
        * criticality_revenue_weight(microservice.criticality.level)
    )


class RevenueObjective(OperatorObjective):
    """Rank containers by the revenue they generate per unit resource.

    Revenue per unit resource is the application's willingness-to-pay scaled
    by the container's criticality weight, so a C1 container of a cheap
    application can still outrank a C5 container of an expensive one.
    """

    name = "revenue"
    independent_scores = True
    static_scores = True  # price and criticality never depend on allocations

    def score(
        self,
        app: Application,
        microservice: Microservice,
        allocated: Mapping[str, float],
    ) -> float:
        # Inlined criticality_revenue_weight (hot path: once per container).
        level = microservice.criticality.level
        if level < 1:
            raise ValueError("criticality level must be >= 1")
        return app.price_per_unit * (1.0 / (level * level))


class FairnessObjective(OperatorObjective):
    """Rank containers so allocations track the water-filling fair share.

    The score is the (signed) remaining headroom below the application's fair
    share after activating the candidate: applications still far below their
    fair share score high, applications at or above it score low.  Ties
    between under-served applications are broken toward the smaller request,
    which keeps the allocation close to textbook water-filling.
    """

    name = "fairness"
    independent_scores = True

    def __init__(self) -> None:
        self._fair_shares: dict[str, float] = {}

    @property
    def fair_shares(self) -> dict[str, float]:
        return dict(self._fair_shares)

    def prepare(self, applications: Mapping[str, Application], capacity: float) -> None:
        # Same accumulation order as Application.total_demand().cpu, without
        # materializing a Resources object per microservice.
        demands = {
            name: sum(ms.resources.cpu * ms.replicas for ms in app)
            for name, app in applications.items()
        }
        self._fair_shares = water_fill_shares(demands, capacity)

    def score(
        self,
        app: Application,
        microservice: Microservice,
        allocated: Mapping[str, float],
    ) -> float:
        fair_share = self._fair_shares.get(app.name, 0.0)
        current = allocated.get(app.name, 0.0)
        demand = microservice.resources.cpu * microservice.replicas
        headroom_after = fair_share - (current + demand)
        return headroom_after


class WeightedObjective(OperatorObjective):
    """A convex combination of other objectives.

    Demonstrates the paper's claim that Phoenix supports arbitrary operator
    objectives: operators can blend revenue and fairness (or any custom
    scorer) without touching the planner.
    """

    name = "weighted"

    def __init__(self, components: Mapping[OperatorObjective, float]) -> None:
        if not components:
            raise ValueError("at least one component objective is required")
        if any(weight < 0 for weight in components.values()):
            raise ValueError("weights must be non-negative")
        total = sum(components.values())
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._components = {obj: weight / total for obj, weight in components.items()}
        self.independent_scores = all(
            getattr(obj, "independent_scores", False) for obj in self._components
        )

    def prepare(self, applications: Mapping[str, Application], capacity: float) -> None:
        for objective in self._components:
            objective.prepare(applications, capacity)

    def score(
        self,
        app: Application,
        microservice: Microservice,
        allocated: Mapping[str, float],
    ) -> float:
        return sum(
            weight * objective.score(app, microservice, allocated)
            for objective, weight in self._components.items()
        )
