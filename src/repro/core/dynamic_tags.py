"""Dynamic criticality tagging (§7, "Dynamic Criticality Tagging").

The paper's discussion section proposes letting applications adjust their
criticality tags based on contextual factors such as time of day or user
behaviour, instead of the static tags used by the main system.  This module
implements that extension:

* :class:`TagRule` — a predicate over a :class:`TaggingContext` plus the tag
  overrides to apply when it matches (e.g. "during business hours the
  reporting pipeline is C2, off-hours it is C7").
* :class:`DynamicTaggingPolicy` — an ordered rule list evaluated against the
  current context; later rules override earlier ones, and anything not
  matched keeps its static tag.
* :class:`CriticalityTagAPI` — the operator-facing registry the paper's
  future-work section sketches: applications submit tag updates at run time,
  the operator validates and applies them, and Phoenix picks up the new tags
  on its next planning round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.cluster.application import Application
from repro.criticality import CriticalityTag


@dataclass(frozen=True, slots=True)
class TaggingContext:
    """The contextual signals a dynamic tagging rule may consult.

    Attributes
    ----------
    hour_of_day:
        Local hour in ``[0, 24)``.
    day_of_week:
        0 = Monday … 6 = Sunday.
    load_factor:
        Current load relative to the application's provisioned capacity
        (1.0 = nominal).
    extras:
        Free-form application-specific signals (feature flags, campaign
        windows, ...).
    """

    hour_of_day: float = 12.0
    day_of_week: int = 0
    load_factor: float = 1.0
    extras: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.hour_of_day < 24.0:
            raise ValueError("hour_of_day must be in [0, 24)")
        if not 0 <= self.day_of_week <= 6:
            raise ValueError("day_of_week must be in [0, 6]")
        if self.load_factor < 0:
            raise ValueError("load_factor must be non-negative")

    @property
    def is_business_hours(self) -> bool:
        """Mon-Fri, 09:00-18:00 — the default notion of peak hours."""
        return self.day_of_week < 5 and 9.0 <= self.hour_of_day < 18.0

    @property
    def is_weekend(self) -> bool:
        return self.day_of_week >= 5


@dataclass(frozen=True, slots=True)
class TagRule:
    """One conditional tag override."""

    name: str
    predicate: Callable[[TaggingContext], bool]
    overrides: Mapping[str, CriticalityTag]

    def applies(self, context: TaggingContext) -> bool:
        return bool(self.predicate(context))


def business_hours_rule(name: str, overrides: Mapping[str, CriticalityTag | int | str]) -> TagRule:
    """Overrides that apply only during business hours."""
    parsed = {ms: CriticalityTag.parse(tag) for ms, tag in overrides.items()}
    return TagRule(name=name, predicate=lambda ctx: ctx.is_business_hours, overrides=parsed)


def off_hours_rule(name: str, overrides: Mapping[str, CriticalityTag | int | str]) -> TagRule:
    """Overrides that apply outside business hours."""
    parsed = {ms: CriticalityTag.parse(tag) for ms, tag in overrides.items()}
    return TagRule(name=name, predicate=lambda ctx: not ctx.is_business_hours, overrides=parsed)


def overload_rule(
    name: str,
    overrides: Mapping[str, CriticalityTag | int | str],
    load_threshold: float = 1.2,
) -> TagRule:
    """Overrides that apply when the application is overloaded."""
    parsed = {ms: CriticalityTag.parse(tag) for ms, tag in overrides.items()}
    return TagRule(
        name=name,
        predicate=lambda ctx: ctx.load_factor >= load_threshold,
        overrides=parsed,
    )


class DynamicTaggingPolicy:
    """An ordered list of tag rules for one application."""

    def __init__(self, application: Application, rules: Iterable[TagRule] = ()) -> None:
        self.application = application
        self._rules: list[TagRule] = []
        for rule in rules:
            self.add_rule(rule)

    @property
    def rules(self) -> list[TagRule]:
        return list(self._rules)

    def add_rule(self, rule: TagRule) -> None:
        unknown = set(rule.overrides) - set(self.application.microservices)
        if unknown:
            raise ValueError(
                f"rule {rule.name!r} overrides unknown microservices: {sorted(unknown)}"
            )
        self._rules.append(rule)

    def tags_for(self, context: TaggingContext) -> dict[str, CriticalityTag]:
        """Effective tags under ``context`` (static tags + matching overrides)."""
        tags = self.application.tags()
        for rule in self._rules:
            if rule.applies(context):
                tags.update(rule.overrides)
        return tags

    def retagged(self, context: TaggingContext) -> Application:
        """A copy of the application carrying the effective tags.

        Phoenix planners consume :class:`Application` objects, so re-tagging
        produces a drop-in replacement for the next planning round.
        """
        return self.application.with_tags(self.tags_for(context))

    def changed_microservices(self, context: TaggingContext) -> dict[str, tuple[CriticalityTag, CriticalityTag]]:
        """Which microservices change tag under ``context`` (old, new)."""
        static = self.application.tags()
        dynamic = self.tags_for(context)
        return {
            name: (static[name], dynamic[name])
            for name in static
            if static[name] != dynamic[name]
        }


class TagUpdateRejected(ValueError):
    """Raised when the operator refuses a runtime tag update."""


class CriticalityTagAPI:
    """Operator-side registry for runtime criticality-tag updates.

    The paper's discussion section envisions "criticality tagging APIs that
    allow applications to assign criticality tags dynamically" while the
    operator guards against abusive updates (everything suddenly tagged C1).
    The guard implemented here is the one the paper suggests operators use:
    a cap on the fraction of an application's resources that may be tagged at
    the highest criticality.
    """

    def __init__(self, max_critical_fraction: float = 0.8) -> None:
        if not 0.0 < max_critical_fraction <= 1.0:
            raise ValueError("max_critical_fraction must be in (0, 1]")
        self.max_critical_fraction = max_critical_fraction
        self._applications: dict[str, Application] = {}
        self._audit_log: list[tuple[str, str, str]] = []

    # -- registration ------------------------------------------------------------
    def register(self, application: Application) -> None:
        if application.name in self._applications:
            raise ValueError(f"application {application.name!r} already registered")
        self._validate(application)
        self._applications[application.name] = application
        self._audit_log.append((application.name, "register", ""))

    def application(self, name: str) -> Application:
        return self._applications[name]

    def applications(self) -> dict[str, Application]:
        return dict(self._applications)

    @property
    def audit_log(self) -> list[tuple[str, str, str]]:
        return list(self._audit_log)

    # -- updates -------------------------------------------------------------------
    def update_tags(self, name: str, overrides: Mapping[str, CriticalityTag | int | str]) -> Application:
        """Apply a tag update for one application; returns the new version."""
        if name not in self._applications:
            raise KeyError(name)
        current = self._applications[name]
        unknown = set(overrides) - set(current.microservices)
        if unknown:
            raise TagUpdateRejected(f"unknown microservices in update: {sorted(unknown)}")
        parsed = {ms: CriticalityTag.parse(tag) for ms, tag in overrides.items()}
        candidate = current.with_tags(parsed)
        self._validate(candidate)
        self._applications[name] = candidate
        self._audit_log.append((name, "update", ",".join(sorted(overrides))))
        return candidate

    def apply_policy(self, policy: DynamicTaggingPolicy, context: TaggingContext) -> Application:
        """Evaluate a dynamic policy and apply the resulting tags."""
        name = policy.application.name
        if name not in self._applications:
            raise KeyError(name)
        changes = policy.changed_microservices(context)
        if not changes:
            return self._applications[name]
        return self.update_tags(name, {ms: new for ms, (_, new) in changes.items()})

    # -- guards ---------------------------------------------------------------------
    def _validate(self, application: Application) -> None:
        total = application.total_demand().cpu
        if total <= 0:
            return
        critical = sum(
            ms.total_resources.cpu for ms in application if ms.criticality.level == 1
        )
        if critical / total > self.max_critical_fraction + 1e-9:
            raise TagUpdateRejected(
                f"{application.name!r} tags {critical / total:.0%} of its resources C1, "
                f"above the operator cap of {self.max_critical_fraction:.0%}"
            )
