"""Phoenix planner — the criticality-aware planning algorithm (Algorithm 1).

The planner has two sub-modules:

* :class:`PriorityEstimator` orders microservices *within* each application
  by combining criticality tags with the application's dependency graph.
  The traversal guarantees that (a) more-critical microservices never appear
  after less-critical ones unless a dependency forces it, and (b) every
  microservice appears after at least one of its predecessors, so every
  prefix of the ordering is a connected, servable sub-application
  (constraints Eq. 1 and Eq. 2 of the paper's LP).
* :class:`GlobalRanker` merges the per-application orderings into a single
  global activation list using the operator objective (fairness, revenue,
  ...), charging each activation against the aggregate healthy capacity.

``PhoenixPlanner`` wires the two together and is what the controller and the
AdaptLab harness call.

Scalability: the global merge is a *lazy-rescore heap*.  Activating a
container only changes the selecting application's own allocation, so only
that application's head container needs re-scoring — every other heap entry
stays valid.  This turns the merge from O(containers x applications) into
O(containers x log(applications)) while producing byte-identical output to
the naive rescan loop (retained in :mod:`repro.core.reference` and enforced
by the golden-equivalence tests).  Objectives whose scores couple
applications (``independent_scores = False``) automatically fall back to the
reference loop.
"""

from __future__ import annotations

import heapq
import itertools

from typing import Mapping

from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.reference import reference_rank


class PriorityEstimator:
    """Order microservices within one application (Alg. 1, lines 5-20)."""

    def rank(self, app: Application) -> list[str]:
        """Return microservice names in activation-priority order."""
        if not app.has_dependency_graph:
            return self._rank_by_criticality(app)
        return self._rank_with_dependencies(app)

    @staticmethod
    def _rank_by_criticality(app: Application) -> list[str]:
        """No dependency graph: order purely by criticality, then name."""
        entries = sorted(
            (ms.criticality.level, name) for name, ms in app.microservices.items()
        )
        return [name for _, name in entries]

    @staticmethod
    def _rank_with_dependencies(app: Application) -> list[str]:
        """Criticality-keyed traversal of the dependency graph.

        A frontier priority queue holds microservices whose activation would
        not violate the topological constraint (source nodes, plus nodes with
        at least one already-ranked predecessor).  The most critical frontier
        node is ranked next; ties break on name for determinism.
        """
        graph = app.dependency_graph
        assert graph is not None
        microservices = app.microservices
        # One pass over the adjacency extracts plain dicts, avoiding the
        # networkx view-object overhead on every node visit.
        adjacency = dict(graph.adjacency())
        in_degree = dict.fromkeys(adjacency, 0)
        for neighbors in adjacency.values():
            for child in neighbors:
                in_degree[child] += 1

        ranked: list[str] = []
        visited: set[str] = set()
        queued: set[str] = set()
        counter = itertools.count()
        heap: list[tuple[int, int, str]] = []
        push = heapq.heappush
        pop = heapq.heappop

        for source in sorted(n for n, degree in in_degree.items() if degree == 0):
            queued.add(source)
            push(heap, (microservices[source].criticality.level, next(counter), source))

        while heap:
            _, _, name = pop(heap)
            queued.discard(name)
            if name in visited:
                continue
            visited.add(name)
            ranked.append(name)
            neighbors = adjacency[name]
            if not neighbors:
                continue
            for child in sorted(neighbors):
                if child in visited or child in queued:
                    continue
                queued.add(child)
                push(heap, (microservices[child].criticality.level, next(counter), child))

        # Microservices unreachable from any source (e.g. nodes inside a cycle
        # with no external entry) are appended by criticality so the planner
        # never silently drops containers.
        if len(visited) < len(microservices):
            leftovers = sorted(
                (ms.criticality.level, name)
                for name, ms in microservices.items()
                if name not in visited
            )
            ranked.extend(name for _, name in leftovers)
        return ranked


class GlobalRanker:
    """Merge per-application orderings using the operator objective."""

    def __init__(self, objective: OperatorObjective) -> None:
        self._objective = objective

    @property
    def objective(self) -> OperatorObjective:
        return self._objective

    def rank(
        self,
        applications: Mapping[str, Application],
        app_rank: Mapping[str, list[str]],
        capacity: float,
    ) -> ActivationPlan:
        """Produce the global activation list (Alg. 1, lines 21-30).

        ``capacity`` is the aggregate CPU capacity of healthy nodes; the
        activated prefix never exceeds it.  The full ranked list is also
        recorded so the scheduler can use it for deletion ordering.

        Each round selects the highest-scoring head container across all
        applications (ties break toward the lexicographically smaller
        application name).  Because only the selected application's
        allocation changes, only its next head needs re-scoring; the heap
        keeps exactly one live entry per application, so every pop is the
        exact argmax the naive rescan loop would have found.
        """
        objective = self._objective
        if not getattr(objective, "independent_scores", False):
            # Scores may couple applications; the lazy heap would go stale.
            return reference_rank(objective, applications, app_rank, capacity)

        objective.prepare(applications, capacity)
        allocated = {name: 0.0 for name in applications}
        score = objective.score

        #: app name -> [priority list, cursor position, Application, ms dict]
        cursors: dict[str, list] = {}
        heap: list[tuple[float, str]] = []
        for name, app in applications.items():
            order = app_rank.get(name, [])
            cursors[name] = [order, 0, app, app.microservices]
            if order:
                heap.append((-score(app, app.microservices[order[0]], allocated), name))
        heapq.heapify(heap)

        ranked: list[RankedMicroservice] = []
        activated: list[RankedMicroservice] = []
        ranked_append = ranked.append
        activated_append = activated.append
        remaining = capacity
        #: Applications whose next container did not fit.  Further containers
        #: of a blocked application are still *ranked* (the scheduler uses the
        #: full order for deletions) but never *activated*, which preserves the
        #: intra-application criticality and dependency constraints (Eq. 1/2).
        blocked: set[str] = set()
        pop = heapq.heappop
        push = heapq.heappush
        tuple_new = tuple.__new__

        while heap:
            _, name = pop(heap)
            cursor = cursors[name]
            order, index, app, microservices = cursor
            ms = microservices[order[index]]
            # == ms.total_resources.cpu without materializing a Resources
            demand = ms.resources.cpu * ms.replicas
            # tuple.__new__ skips the generated NamedTuple __new__ wrapper
            entry = tuple_new(RankedMicroservice, (name, ms.name, demand))
            ranked_append(entry)
            if name not in blocked and demand <= remaining + 1e-9:
                activated_append(entry)
                remaining -= demand
                allocated[name] += demand
            else:
                # Capacity exhausted for this application.  Unlike the paper's
                # pseudo-code, which breaks out of the loop entirely, we keep
                # scanning other applications so that smaller containers can
                # still use leftover capacity; this strictly increases
                # utilization and never violates per-application ordering.
                blocked.add(name)
            index += 1
            cursor[1] = index
            if index < len(order):
                push(heap, (-score(app, microservices[order[index]], allocated), name))

        return ActivationPlan(
            ranked=ranked,
            activated=activated,
            capacity=capacity,
            objective=objective.name,
        )


class PhoenixPlanner:
    """The complete Phoenix planner: priority estimation + global ranking."""

    def __init__(self, objective: OperatorObjective) -> None:
        self._estimator = PriorityEstimator()
        self._ranker = GlobalRanker(objective)
        #: app name -> (source Application, degradable Application,
        #:              pinned cpu, pinned entries); identity-validated cache
        #: of the stateful/stateless split so repeated planning rounds over
        #: unchanged applications skip the per-round subgraph rebuild.
        self._split_cache: dict[str, tuple[Application, Application, float, tuple[RankedMicroservice, ...]]] = {}

    @property
    def objective(self) -> OperatorObjective:
        return self._ranker.objective

    def app_ranks(self, applications: Mapping[str, Application]) -> dict[str, list[str]]:
        """Per-application priority lists (exposed for tests and tooling)."""
        return {name: self._estimator.rank(app) for name, app in applications.items()}

    def _split_stateful(
        self, name: str, app: Application
    ) -> tuple[Application, float, tuple[RankedMicroservice, ...]]:
        """Split one application into pinned (stateful) and degradable parts.

        The split is cached per application *object*: the cache hit requires
        the exact same Application instance, so re-tagged or re-registered
        applications never reuse stale entries.
        """
        cached = self._split_cache.get(name)
        if cached is not None and cached[0] is app:
            return cached[1], cached[2], cached[3]

        stateful = [ms for ms in app if ms.stateful]
        if not stateful:
            self._split_cache[name] = (app, app, 0.0, ())
            return app, 0.0, ()

        stateless = [ms for ms in app if not ms.stateful]
        pinned = sum(ms.total_resources.cpu for ms in stateful)
        pinned_entries = tuple(
            RankedMicroservice(name, ms.name, ms.total_resources.cpu) for ms in stateful
        )
        degradable = Application(
            name=app.name,
            microservices={ms.name: ms for ms in stateless},
            dependency_graph=(
                app.dependency_graph.subgraph(ms.name for ms in stateless).copy()
                if app.dependency_graph is not None
                else None
            ),
            price_per_unit=app.price_per_unit,
            critical_service=app.critical_service,
        )
        self._split_cache[name] = (app, degradable, pinned, pinned_entries)
        return degradable, pinned, pinned_entries

    def plan(self, state: ClusterState) -> ActivationPlan:
        """Plan activations for the current cluster state.

        Stateful microservices are excluded from diagonal scaling: they are
        charged against capacity up front and never appear in the ranked
        list, mirroring Phoenix's stateless-only scope (§5).
        """
        applications = state.applications
        capacity = state.total_capacity().cpu

        pinned = 0.0
        degradable: dict[str, Application] = {}
        pinned_entries: list[RankedMicroservice] = []
        for name, app in applications.items():
            degradable_app, pinned_cpu, entries = self._split_stateful(name, app)
            degradable[name] = degradable_app
            pinned += pinned_cpu
            pinned_entries.extend(entries)

        available = max(0.0, capacity - pinned)
        app_rank = self.app_ranks(degradable)
        plan = self._ranker.rank(degradable, app_rank, available)
        # Stateful microservices are always part of the target state.
        plan.activated = pinned_entries + plan.activated
        plan.ranked = pinned_entries + plan.ranked
        plan.capacity = capacity
        return plan
