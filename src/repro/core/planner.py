"""Phoenix planner — the criticality-aware planning algorithm (Algorithm 1).

The planner has two sub-modules:

* :class:`PriorityEstimator` orders microservices *within* each application
  by combining criticality tags with the application's dependency graph.
  The traversal guarantees that (a) more-critical microservices never appear
  after less-critical ones unless a dependency forces it, and (b) every
  microservice appears after at least one of its predecessors, so every
  prefix of the ordering is a connected, servable sub-application
  (constraints Eq. 1 and Eq. 2 of the paper's LP).
* :class:`GlobalRanker` merges the per-application orderings into a single
  global activation list using the operator objective (fairness, revenue,
  ...), charging each activation against the aggregate healthy capacity.

``PhoenixPlanner`` wires the two together and is what the controller and the
AdaptLab harness call.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.plan import ActivationPlan, RankedMicroservice


class PriorityEstimator:
    """Order microservices within one application (Alg. 1, lines 5-20)."""

    def rank(self, app: Application) -> list[str]:
        """Return microservice names in activation-priority order."""
        if not app.has_dependency_graph:
            return self._rank_by_criticality(app)
        return self._rank_with_dependencies(app)

    @staticmethod
    def _rank_by_criticality(app: Application) -> list[str]:
        """No dependency graph: order purely by criticality, then name."""
        return sorted(app.microservices, key=lambda n: (app.criticality_of(n).level, n))

    @staticmethod
    def _rank_with_dependencies(app: Application) -> list[str]:
        """Criticality-keyed traversal of the dependency graph.

        A frontier priority queue holds microservices whose activation would
        not violate the topological constraint (source nodes, plus nodes with
        at least one already-ranked predecessor).  The most critical frontier
        node is ranked next; ties break on name for determinism.
        """
        graph = app.dependency_graph
        assert graph is not None
        ranked: list[str] = []
        visited: set[str] = set()
        queued: set[str] = set()
        counter = itertools.count()
        heap: list[tuple[int, int, str]] = []

        def push(name: str) -> None:
            if name in visited or name in queued:
                return
            queued.add(name)
            heapq.heappush(heap, (app.criticality_of(name).level, next(counter), name))

        for source in app.source_microservices():
            push(source)

        while heap:
            _, _, name = heapq.heappop(heap)
            queued.discard(name)
            if name in visited:
                continue
            visited.add(name)
            ranked.append(name)
            for child in app.successors(name):
                push(child)

        # Microservices unreachable from any source (e.g. nodes inside a cycle
        # with no external entry) are appended by criticality so the planner
        # never silently drops containers.
        leftovers = sorted(
            (n for n in app.microservices if n not in visited),
            key=lambda n: (app.criticality_of(n).level, n),
        )
        ranked.extend(leftovers)
        return ranked


@dataclass
class _AppCursor:
    """Iteration state over one application's priority list."""

    app: Application
    order: list[str]
    index: int = 0

    def current(self) -> str | None:
        if self.index >= len(self.order):
            return None
        return self.order[self.index]

    def advance(self) -> None:
        self.index += 1


class GlobalRanker:
    """Merge per-application orderings using the operator objective."""

    def __init__(self, objective: OperatorObjective) -> None:
        self._objective = objective

    @property
    def objective(self) -> OperatorObjective:
        return self._objective

    def rank(
        self,
        applications: Mapping[str, Application],
        app_rank: Mapping[str, list[str]],
        capacity: float,
    ) -> ActivationPlan:
        """Produce the global activation list (Alg. 1, lines 21-30).

        ``capacity`` is the aggregate CPU capacity of healthy nodes; the
        activated prefix never exceeds it.  The full ranked list is also
        recorded so the scheduler can use it for deletion ordering.
        """
        self._objective.prepare(applications, capacity)
        allocated = {name: 0.0 for name in applications}
        cursors = {
            name: _AppCursor(applications[name], list(app_rank.get(name, [])))
            for name in applications
        }

        ranked: list[RankedMicroservice] = []
        activated: list[RankedMicroservice] = []
        remaining = capacity
        #: Applications whose next container did not fit.  Further containers
        #: of a blocked application are still *ranked* (the scheduler uses the
        #: full order for deletions) but never *activated*, which preserves the
        #: intra-application criticality and dependency constraints (Eq. 1/2).
        blocked: set[str] = set()

        while True:
            best_app: str | None = None
            best_score = float("-inf")
            for name, cursor in cursors.items():
                ms_name = cursor.current()
                if ms_name is None:
                    continue
                ms = cursor.app.get(ms_name)
                score = self._objective.score(cursor.app, ms, allocated)
                if score > best_score or (score == best_score and (best_app is None or name < best_app)):
                    best_score = score
                    best_app = name
            if best_app is None:
                break

            cursor = cursors[best_app]
            ms_name = cursor.current()
            assert ms_name is not None
            ms = cursor.app.get(ms_name)
            demand = ms.total_resources.cpu
            entry = RankedMicroservice(best_app, ms_name, demand)
            ranked.append(entry)
            if best_app not in blocked and demand <= remaining + 1e-9:
                activated.append(entry)
                remaining -= demand
                allocated[best_app] += demand
            else:
                # Capacity exhausted for this application.  Unlike the paper's
                # pseudo-code, which breaks out of the loop entirely, we keep
                # scanning other applications so that smaller containers can
                # still use leftover capacity; this strictly increases
                # utilization and never violates per-application ordering.
                blocked.add(best_app)
            cursor.advance()

        return ActivationPlan(
            ranked=ranked,
            activated=activated,
            capacity=capacity,
            objective=self._objective.name,
        )


class PhoenixPlanner:
    """The complete Phoenix planner: priority estimation + global ranking."""

    def __init__(self, objective: OperatorObjective) -> None:
        self._estimator = PriorityEstimator()
        self._ranker = GlobalRanker(objective)

    @property
    def objective(self) -> OperatorObjective:
        return self._ranker.objective

    def app_ranks(self, applications: Mapping[str, Application]) -> dict[str, list[str]]:
        """Per-application priority lists (exposed for tests and tooling)."""
        return {name: self._estimator.rank(app) for name, app in applications.items()}

    def plan(self, state: ClusterState) -> ActivationPlan:
        """Plan activations for the current cluster state.

        Stateful microservices are excluded from diagonal scaling: they are
        charged against capacity up front and never appear in the ranked
        list, mirroring Phoenix's stateless-only scope (§5).
        """
        applications = state.applications
        capacity = state.total_capacity().cpu

        pinned = 0.0
        degradable: dict[str, Application] = {}
        pinned_entries: list[RankedMicroservice] = []
        for name, app in applications.items():
            stateless = [ms for ms in app if not ms.stateful]
            stateful = [ms for ms in app if ms.stateful]
            pinned += sum(ms.total_resources.cpu for ms in stateful)
            pinned_entries.extend(
                RankedMicroservice(name, ms.name, ms.total_resources.cpu) for ms in stateful
            )
            if stateful:
                degradable[name] = Application(
                    name=app.name,
                    microservices={ms.name: ms for ms in stateless},
                    dependency_graph=(
                        app.dependency_graph.subgraph(ms.name for ms in stateless).copy()
                        if app.dependency_graph is not None
                        else None
                    ),
                    price_per_unit=app.price_per_unit,
                    critical_service=app.critical_service,
                )
            else:
                degradable[name] = app

        available = max(0.0, capacity - pinned)
        app_rank = self.app_ranks(degradable)
        plan = self._ranker.rank(degradable, app_rank, available)
        # Stateful microservices are always part of the target state.
        plan.activated = pinned_entries + plan.activated
        plan.ranked = pinned_entries + plan.ranked
        plan.capacity = capacity
        return plan
