"""Phoenix planner — the criticality-aware planning algorithm (Algorithm 1).

The planner has two sub-modules:

* :class:`PriorityEstimator` orders microservices *within* each application
  by combining criticality tags with the application's dependency graph.
  The traversal guarantees that (a) more-critical microservices never appear
  after less-critical ones unless a dependency forces it, and (b) every
  microservice appears after at least one of its predecessors, so every
  prefix of the ordering is a connected, servable sub-application
  (constraints Eq. 1 and Eq. 2 of the paper's LP).
* :class:`GlobalRanker` merges the per-application orderings into a single
  global activation list using the operator objective (fairness, revenue,
  ...), charging each activation against the aggregate healthy capacity.

``PhoenixPlanner`` wires the two together and is what the controller and the
AdaptLab harness call.

Scalability: the global merge is a *lazy-rescore heap*.  Activating a
container only changes the selecting application's own allocation, so only
that application's head container needs re-scoring — every other heap entry
stays valid.  This turns the merge from O(containers x applications) into
O(containers x log(applications)) while producing byte-identical output to
the naive rescan loop (retained in :mod:`repro.core.reference` and enforced
by the golden-equivalence tests).  Objectives whose scores couple
applications (``independent_scores = False``) automatically fall back to the
reference loop.
"""

from __future__ import annotations

import heapq
import itertools

from typing import Mapping

from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.reference import reference_rank


class PriorityEstimator:
    """Order microservices within one application (Alg. 1, lines 5-20)."""

    def rank(self, app: Application) -> list[str]:
        """Return microservice names in activation-priority order."""
        if not app.has_dependency_graph:
            return self._rank_by_criticality(app)
        return self._rank_with_dependencies(app)

    @staticmethod
    def _rank_by_criticality(app: Application) -> list[str]:
        """No dependency graph: order purely by criticality, then name."""
        entries = sorted(
            (ms.criticality.level, name) for name, ms in app.microservices.items()
        )
        return [name for _, name in entries]

    @staticmethod
    def _rank_with_dependencies(app: Application) -> list[str]:
        """Criticality-keyed traversal of the dependency graph.

        A frontier priority queue holds microservices whose activation would
        not violate the topological constraint (source nodes, plus nodes with
        at least one already-ranked predecessor).  The most critical frontier
        node is ranked next; ties break on name for determinism.
        """
        graph = app.dependency_graph
        assert graph is not None
        microservices = app.microservices
        # One pass over the adjacency extracts plain dicts, avoiding the
        # networkx view-object overhead on every node visit.
        adjacency = dict(graph.adjacency())
        in_degree = dict.fromkeys(adjacency, 0)
        for neighbors in adjacency.values():
            for child in neighbors:
                in_degree[child] += 1

        ranked: list[str] = []
        visited: set[str] = set()
        queued: set[str] = set()
        counter = itertools.count()
        heap: list[tuple[int, int, str]] = []
        push = heapq.heappush
        pop = heapq.heappop

        for source in sorted(n for n, degree in in_degree.items() if degree == 0):
            queued.add(source)
            push(heap, (microservices[source].criticality.level, next(counter), source))

        while heap:
            _, _, name = pop(heap)
            queued.discard(name)
            if name in visited:
                continue
            visited.add(name)
            ranked.append(name)
            neighbors = adjacency[name]
            if not neighbors:
                continue
            for child in sorted(neighbors):
                if child in visited or child in queued:
                    continue
                queued.add(child)
                push(heap, (microservices[child].criticality.level, next(counter), child))

        # Microservices unreachable from any source (e.g. nodes inside a cycle
        # with no external entry) are appended by criticality so the planner
        # never silently drops containers.
        if len(visited) < len(microservices):
            leftovers = sorted(
                (ms.criticality.level, name)
                for name, ms in microservices.items()
                if name not in visited
            )
            ranked.extend(name for _, name in leftovers)
        return ranked


class GlobalRanker:
    """Merge per-application orderings using the operator objective.

    With ``cache_ranks``, objectives that declare ``static_scores`` (scores
    independent of both the running allocations and the capacity handed to
    ``prepare`` — e.g. revenue) rank in a *capacity-independent* merge
    order, so the merged ranked list is cached across rounds and only the
    activation prefix is recomputed against the round's capacity.  The
    cached list is exactly what the heap merge produced on the first round;
    the prefix scan applies the same activate-or-block rule with the same
    float arithmetic, so output is byte-identical to re-running the merge.
    ``cache_ranks`` is off by default so microbenchmarks that loop ``rank``
    over frozen inputs measure the real merge; the engine turns it on.
    """

    def __init__(self, objective: OperatorObjective, cache_ranks: bool = False) -> None:
        self._objective = objective
        self._cache_ranks = cache_ranks
        #: (Application objects, priority-list objects, merged ranked tuple)
        self._static_cache: tuple[tuple, tuple, tuple[RankedMicroservice, ...]] | None = None

    @property
    def objective(self) -> OperatorObjective:
        return self._objective

    def _static_eligible(self) -> bool:
        objective = self._objective
        return (
            self._cache_ranks
            and getattr(objective, "static_scores", False)
            and type(objective).prepare is OperatorObjective.prepare
        )

    def _cached_ranked(
        self, applications: Mapping[str, Application], app_rank: Mapping[str, list[str]]
    ) -> tuple[RankedMicroservice, ...] | None:
        """The cached merge order, when applications and orders are unchanged.

        Validated by identity on both the :class:`Application` objects and
        the priority lists (the planner's rank cache keeps list identity
        stable for unchanged applications).
        """
        cached = self._static_cache
        if cached is None:
            return None
        apps_then, orders_then, ranked = cached
        if len(apps_then) != len(applications):
            return None
        if not all(a is b for a, b in zip(apps_then, applications.values())):
            return None
        orders_now = tuple(app_rank.get(name) for name in applications)
        if len(orders_then) != len(orders_now) or not all(
            a is b for a, b in zip(orders_then, orders_now)
        ):
            return None
        return ranked

    def _activate_prefix(
        self, ranked: tuple[RankedMicroservice, ...], capacity: float
    ) -> ActivationPlan:
        """Apply the capacity cutoff to a cached merge order (Alg. 1 semantics)."""
        activated: list[RankedMicroservice] = []
        activated_append = activated.append
        remaining = capacity
        blocked: set[str] = set()
        for entry in ranked:
            name = entry[0]
            demand = entry[2]
            if name not in blocked and demand <= remaining + 1e-9:
                activated_append(entry)
                remaining -= demand
            else:
                blocked.add(name)
        plan = ActivationPlan(
            ranked=list(ranked),
            activated=activated,
            capacity=capacity,
            objective=self._objective.name,
        )
        # Identity marker for downstream memoization (PhoenixPlanner reuses
        # the full ranked list + rank index while the merge order is stable).
        plan._static_source = ranked
        return plan

    def rank(
        self,
        applications: Mapping[str, Application],
        app_rank: Mapping[str, list[str]],
        capacity: float,
    ) -> ActivationPlan:
        """Produce the global activation list (Alg. 1, lines 21-30).

        ``capacity`` is the aggregate CPU capacity of healthy nodes; the
        activated prefix never exceeds it.  The full ranked list is also
        recorded so the scheduler can use it for deletion ordering.

        Each round selects the highest-scoring head container across all
        applications (ties break toward the lexicographically smaller
        application name).  Because only the selected application's
        allocation changes, only its next head needs re-scoring; the heap
        keeps exactly one live entry per application, so every pop is the
        exact argmax the naive rescan loop would have found.
        """
        objective = self._objective
        if not getattr(objective, "independent_scores", False):
            # Scores may couple applications; the lazy heap would go stale.
            return reference_rank(objective, applications, app_rank, capacity)

        static = self._static_eligible()
        if static:
            ranked_cached = self._cached_ranked(applications, app_rank)
            if ranked_cached is not None:
                return self._activate_prefix(ranked_cached, capacity)

        objective.prepare(applications, capacity)
        allocated = {name: 0.0 for name in applications}
        score = objective.score

        #: app name -> [priority list, cursor position, Application, ms dict]
        cursors: dict[str, list] = {}
        heap: list[tuple[float, str]] = []
        for name, app in applications.items():
            order = app_rank.get(name, [])
            cursors[name] = [order, 0, app, app.microservices]
            if order:
                heap.append((-score(app, app.microservices[order[0]], allocated), name))
        heapq.heapify(heap)

        ranked: list[RankedMicroservice] = []
        activated: list[RankedMicroservice] = []
        ranked_append = ranked.append
        activated_append = activated.append
        remaining = capacity
        #: Applications whose next container did not fit.  Further containers
        #: of a blocked application are still *ranked* (the scheduler uses the
        #: full order for deletions) but never *activated*, which preserves the
        #: intra-application criticality and dependency constraints (Eq. 1/2).
        blocked: set[str] = set()
        pop = heapq.heappop
        push = heapq.heappush
        tuple_new = tuple.__new__

        while heap:
            _, name = pop(heap)
            cursor = cursors[name]
            order, index, app, microservices = cursor
            ms = microservices[order[index]]
            # == ms.total_resources.cpu without materializing a Resources
            demand = ms.resources.cpu * ms.replicas
            # tuple.__new__ skips the generated NamedTuple __new__ wrapper
            entry = tuple_new(RankedMicroservice, (name, ms.name, demand))
            ranked_append(entry)
            if name not in blocked and demand <= remaining + 1e-9:
                activated_append(entry)
                remaining -= demand
                allocated[name] += demand
            else:
                # Capacity exhausted for this application.  Unlike the paper's
                # pseudo-code, which breaks out of the loop entirely, we keep
                # scanning other applications so that smaller containers can
                # still use leftover capacity; this strictly increases
                # utilization and never violates per-application ordering.
                blocked.add(name)
            index += 1
            cursor[1] = index
            if index < len(order):
                push(heap, (-score(app, microservices[order[index]], allocated), name))

        if static:
            self._static_cache = (
                tuple(applications.values()),
                tuple(app_rank.get(name) for name in applications),
                tuple(ranked),
            )
        return ActivationPlan(
            ranked=ranked,
            activated=activated,
            capacity=capacity,
            objective=objective.name,
        )


class PhoenixPlanner:
    """The complete Phoenix planner: priority estimation + global ranking.

    ``cache_plans`` enables whole-plan memoization: when the application set
    (by identity) and the healthy capacity are unchanged since the previous
    round, :meth:`plan` returns the previous :class:`ActivationPlan` object.
    The plan is a pure function of (applications, capacity, objective), so
    the cached object is byte-identical to a recomputation; the flag exists
    so microbenchmarks that time repeated planning rounds on a frozen state
    keep measuring real work (the engine turns it on, benches leave it off).
    """

    def __init__(self, objective: OperatorObjective, cache_plans: bool = False) -> None:
        self._estimator = PriorityEstimator()
        self._ranker = GlobalRanker(objective, cache_ranks=cache_plans)
        #: app name -> (source Application, degradable Application,
        #:              pinned cpu, pinned entries); identity-validated cache
        #: of the stateful/stateless split so repeated planning rounds over
        #: unchanged applications skip the per-round subgraph rebuild.
        self._split_cache: dict[str, tuple[Application, Application, float, tuple[RankedMicroservice, ...]]] = {}
        #: app name -> (Application, priority list); identity-validated cache
        #: of the per-application priority estimation (pure per application).
        self._rank_cache: dict[str, tuple[Application, list[str]]] = {}
        self._cache_plans = cache_plans
        #: (application objects, capacity, plan) of the previous round.
        self._plan_cache: tuple[tuple[Application, ...], float, ActivationPlan] | None = None
        #: (static merge tuple, pinned entries, full ranked list, rank index):
        #: the assembled ranked list and its index are pure functions of the
        #: merge order and the pinned entries, so successive rounds share
        #: them instead of rebuilding O(containers) structures.
        self._index_memo: tuple[tuple, tuple, list, dict] | None = None

    @property
    def objective(self) -> OperatorObjective:
        return self._ranker.objective

    def app_ranks(self, applications: Mapping[str, Application]) -> dict[str, list[str]]:
        """Per-application priority lists (exposed for tests and tooling).

        Cached per :class:`Application` *instance*: re-registered or
        re-tagged applications (new objects) are re-ranked, unchanged ones
        reuse the previous list — the estimation is a pure function of the
        application, so cached and fresh lists are identical.
        """
        cache = self._rank_cache
        ranks: dict[str, list[str]] = {}
        for name, app in applications.items():
            cached = cache.get(name)
            if cached is not None and cached[0] is app:
                ranks[name] = cached[1]
            else:
                order = self._estimator.rank(app)
                cache[name] = (app, order)
                ranks[name] = order
        return ranks

    def _split_stateful(
        self, name: str, app: Application
    ) -> tuple[Application, float, tuple[RankedMicroservice, ...]]:
        """Split one application into pinned (stateful) and degradable parts.

        The split is cached per application *object*: the cache hit requires
        the exact same Application instance, so re-tagged or re-registered
        applications never reuse stale entries.
        """
        cached = self._split_cache.get(name)
        if cached is not None and cached[0] is app:
            return cached[1], cached[2], cached[3]

        stateful = [ms for ms in app if ms.stateful]
        if not stateful:
            self._split_cache[name] = (app, app, 0.0, ())
            return app, 0.0, ()

        stateless = [ms for ms in app if not ms.stateful]
        pinned = sum(ms.total_resources.cpu for ms in stateful)
        pinned_entries = tuple(
            RankedMicroservice(name, ms.name, ms.total_resources.cpu) for ms in stateful
        )
        degradable = Application(
            name=app.name,
            microservices={ms.name: ms for ms in stateless},
            dependency_graph=(
                app.dependency_graph.subgraph(ms.name for ms in stateless).copy()
                if app.dependency_graph is not None
                else None
            ),
            price_per_unit=app.price_per_unit,
            critical_service=app.critical_service,
        )
        self._split_cache[name] = (app, degradable, pinned, pinned_entries)
        return degradable, pinned, pinned_entries

    def plan(self, state: ClusterState) -> ActivationPlan:
        """Plan activations for the current cluster state.

        Stateful microservices are excluded from diagonal scaling: they are
        charged against capacity up front and never appear in the ranked
        list, mirroring Phoenix's stateless-only scope (§5).
        """
        applications = state.applications
        capacity = state.total_capacity().cpu

        if self._cache_plans:
            cached = self._plan_cache
            if cached is not None:
                apps_then, capacity_then, plan_then = cached
                if (
                    capacity_then == capacity
                    and len(apps_then) == len(applications)
                    and all(a is b for a, b in zip(apps_then, applications.values()))
                ):
                    return plan_then

        pinned = 0.0
        degradable: dict[str, Application] = {}
        pinned_entries: list[RankedMicroservice] = []
        for name, app in applications.items():
            degradable_app, pinned_cpu, entries = self._split_stateful(name, app)
            degradable[name] = degradable_app
            pinned += pinned_cpu
            pinned_entries.extend(entries)

        available = max(0.0, capacity - pinned)
        app_rank = self.app_ranks(degradable)
        plan = self._ranker.rank(degradable, app_rank, available)
        # Stateful microservices are always part of the target state.
        plan.activated = pinned_entries + plan.activated
        marker = getattr(plan, "_static_source", None)
        memo = self._index_memo
        if (
            marker is not None
            and memo is not None
            and memo[0] is marker
            and len(memo[1]) == len(pinned_entries)
            and all(a is b for a, b in zip(memo[1], pinned_entries))
        ):
            # Same merge order and pinned set as last round: share the
            # assembled ranked list and its (app, ms) -> position index.
            plan.ranked = memo[2]
            plan._rank_index = memo[3]
            plan._rank_index_source = memo[2]
        else:
            plan.ranked = pinned_entries + plan.ranked
            if marker is not None:
                self._index_memo = (
                    marker,
                    tuple(pinned_entries),
                    plan.ranked,
                    plan.rank_index(),
                )
        plan.capacity = capacity
        if self._cache_plans:
            self._plan_cache = (tuple(applications.values()), capacity, plan)
        return plan
