"""The Phoenix scheduler's packing heuristic (Algorithm 2 / Appendix B).

The packing module maps the planner's globally ordered activation list onto
healthy nodes using a three-pronged strategy:

1. **Best fit** — place the replica on the healthy node with the *least*
   free capacity that can still hold it.
2. **Repack (migration)** — if no node fits, try to free one up by migrating
   smaller replicas off a candidate node onto other nodes.
3. **Delete lower ranks** — as a last resort, delete replicas of
   lower-ranked microservices (from the tail of the planner's list) until
   the replica fits.

All work happens on a *copy* of the cluster state; the agent later applies
the resulting action list to the real cluster.

Scalability notes (100k-node hot path):

* :class:`_NodeIndex` is a blocked sorted structure keyed by
  ``(free cpu, node name)`` with a per-block *maximum free memory*.  Best-fit
  lookups skip whole blocks whose memory cannot possibly fit the demand, so
  the "CPU fits but memory does not" pathology no longer degrades to an
  O(nodes) scan, and the index snapshots each node's free resources so scans
  never recompute them.  Removal uses the exact stored key — no tolerance
  scan, no linear fallback.
* :class:`_VictimIndex` keeps the delete-lower-ranks victim order (rank
  descending, assignment order within a rank) incrementally, instead of
  re-sorting every assignment on each unplaced container.

Both structures are behaviour-preserving: packings are byte-identical to
the naive implementation retained in :mod:`repro.core.reference`, which the
golden-equivalence tests enforce.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId, SchedulingError  # noqa: F401  (re-export)
from repro.core.plan import ActivationPlan, RankedMicroservice


class _NodeIndex:
    """Healthy nodes indexed by ``(free cpu, name)`` in sorted blocks.

    The index is maintained incrementally as replicas are placed or removed:
    every mutation of a node's usage is bracketed by :meth:`remove` /
    :meth:`reinsert`, so the ``(free cpu, free memory)`` snapshot in
    ``_free`` always equals the state's live ``free_on`` value.

    Each block caches its maximum free memory as a ``[value, multiplicity]``
    pair: removing one of several equal-max entries just decrements the
    multiplicity, so homogeneous-memory workloads never rescan a block.
    """

    #: Target block size; blocks split at twice this length.
    BLOCK = 384

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self._free_pair = state.free_pair
        entries = state.free_table()
        #: node name -> (free cpu, free memory), authoritative inside the index
        self._free: dict[str, tuple[float, float]] = {
            name: (cpu, mem) for cpu, name, mem in entries
        }
        entries.sort()
        block = self.BLOCK
        self._blocks: list[list[tuple[float, str, float]]] = [
            entries[i : i + block] for i in range(0, len(entries), block)
        ]
        self._maxmem: list[list[float]] = [self._block_max(b) for b in self._blocks]
        #: (cpu, name) of each block's last entry, for block bisection
        self._tails: list[tuple[float, str]] = [(b[-1][0], b[-1][1]) for b in self._blocks]

    @staticmethod
    def _block_max(block: list[tuple[float, str, float]]) -> list[float]:
        top = max(e[2] for e in block)
        count = 0
        for e in block:
            if e[2] == top:
                count += 1
        return [top, count]

    def __len__(self) -> int:
        return len(self._free)

    def remove(self, node_name: str) -> None:
        """Remove a node using its exact stored key (raises if absent)."""
        cpu, mem = self._free.pop(node_name)
        key = (cpu, node_name)
        i = bisect.bisect_left(self._tails, key)
        block = self._blocks[i]
        j = bisect.bisect_left(block, key)
        if block[j][1] != node_name:  # pragma: no cover - index corruption guard
            raise KeyError(f"node {node_name!r} not at its indexed position")
        del block[j]
        if not block:
            del self._blocks[i]
            del self._maxmem[i]
            del self._tails[i]
            return
        self._tails[i] = (block[-1][0], block[-1][1])
        top = self._maxmem[i]
        if mem == top[0]:
            top[1] -= 1
            if top[1] == 0:
                self._maxmem[i] = self._block_max(block)

    def update(self, node_name: str, new_pair: tuple[float, float] | None = None) -> None:
        """Re-key a node after its usage changed (fused remove + reinsert).

        ``new_pair`` is the node's new free (cpu, memory) when the caller
        already knows it (the trusted state mutators return it); otherwise it
        is recomputed from the state.  When the new key lands in the same
        block the entry is moved with a single block edit; otherwise it falls
        back to remove + reinsert.
        """
        pair = self._free.get(node_name)
        if pair is None:  # pragma: no cover - index corruption guard
            raise KeyError(node_name)
        cpu, mem = pair
        if new_pair is None:
            new_pair = self._free_pair(node_name)
        ncpu, nmem = new_pair
        key = (cpu, node_name)
        new_key = (ncpu, node_name)
        i = bisect.bisect_left(self._tails, key)
        blocks = self._blocks
        block = blocks[i]
        if (i == 0 or self._tails[i - 1] < new_key) and (
            i == len(blocks) - 1 or new_key < (blocks[i + 1][0][0], blocks[i + 1][0][1])
        ):
            j = bisect.bisect_left(block, key)
            if block[j][1] != node_name:  # pragma: no cover - corruption guard
                raise KeyError(f"node {node_name!r} not at its indexed position")
            del block[j]
            bisect.insort(block, (ncpu, node_name, nmem))
            self._free[node_name] = new_pair
            self._tails[i] = (block[-1][0], block[-1][1])
            if nmem != mem:  # unchanged memory leaves the block max as-is
                top = self._maxmem[i]
                if mem == top[0]:
                    top[1] -= 1
                if nmem > top[0]:
                    self._maxmem[i] = [nmem, 1]
                elif nmem == top[0]:
                    top[1] += 1
                elif top[1] == 0:
                    self._maxmem[i] = self._block_max(block)
            return
        self.remove(node_name)
        self.reinsert(node_name)

    def refresh(self, node_name: str) -> None:
        """Reconcile one node's entry after out-of-band state changes.

        Used by the incremental scheduler when re-using a persistent index
        across rounds: a node that failed leaves the index, a node that
        recovered (re)enters it, and a healthy node whose usage changed is
        re-keyed.  The resulting entry set is exactly what a fresh
        ``_NodeIndex(state)`` build would contain for this node.
        """
        present = node_name in self._free
        if self._state.nodes[node_name].failed:
            if present:
                self.remove(node_name)
            return
        if present:
            self.update(node_name)
        else:
            self.reinsert(node_name)

    def reinsert(self, node_name: str) -> None:
        cpu, mem = self._free_pair(node_name)
        self._free[node_name] = (cpu, mem)
        entry = (cpu, node_name, mem)
        blocks = self._blocks
        if not blocks:
            blocks.append([entry])
            self._maxmem.append([mem, 1])
            self._tails.append((cpu, node_name))
            return
        i = bisect.bisect_left(self._tails, (cpu, node_name))
        if i == len(blocks):
            i -= 1
        block = blocks[i]
        bisect.insort(block, entry)
        top = self._maxmem[i]
        if mem > top[0]:
            self._maxmem[i] = [mem, 1]
        elif mem == top[0]:
            top[1] += 1
        self._tails[i] = (block[-1][0], block[-1][1])
        if len(block) > 2 * self.BLOCK:
            self._split(i)

    def _split(self, i: int) -> None:
        block = self._blocks[i]
        mid = len(block) // 2
        right = block[mid:]
        del block[mid:]
        self._blocks.insert(i + 1, right)
        self._maxmem[i] = self._block_max(block)
        self._maxmem.insert(i + 1, self._block_max(right))
        self._tails[i] = (block[-1][0], block[-1][1])
        self._tails.insert(i + 1, (right[-1][0], right[-1][1]))

    def best_fit(self, demand: Resources) -> str | None:
        """Healthy node with the smallest free capacity >= demand, or None."""
        demand_cpu = demand.cpu
        demand_mem = demand.memory
        start_key = (demand_cpu - 1e-9, "")
        blocks = self._blocks
        maxmem = self._maxmem
        first = bisect.bisect_left(self._tails, start_key)
        for bi in range(first, len(blocks)):
            # Skip blocks where no entry can satisfy the memory dimension.
            if demand_mem > maxmem[bi][0] + 1e-9:
                continue
            block = blocks[bi]
            j = bisect.bisect_left(block, start_key) if bi == first else 0
            for k in range(j, len(block)):
                entry = block[k]
                # Same fit predicate as Resources.fits_within on the node's
                # live free capacity (cpu is >= demand - 1e-9 by construction
                # of the scan start, but kept for exactness on ties).
                if demand_cpu <= entry[0] + 1e-9 and demand_mem <= entry[2] + 1e-9:
                    return entry[1]
        return None

    def nodes_by_free_desc(self, limit: int | None = None) -> list[str]:
        """Node names by free CPU descending, optionally only the top few."""
        out: list[str] = []
        for bi in range(len(self._blocks) - 1, -1, -1):
            block = self._blocks[bi]
            for k in range(len(block) - 1, -1, -1):
                out.append(block[k][1])
                if limit is not None and len(out) >= limit:
                    return out
        return out


class _VictimIndex:
    """Assigned replicas grouped by global rank, for delete-lower-ranks.

    Victims are consumed lowest-priority first: highest rank, and within a
    rank in assignment order (matching the stable reverse sort over the
    assignment map that the naive implementation performs per call — a
    replica that is unassigned and re-assigned moves to the back of its rank
    bucket, exactly like a re-inserted key moves to the back of a dict).

    The index is built lazily on the first delete-lower-ranks call (many
    packs never reach that strategy) and maintained incrementally afterwards.
    """

    def __init__(self, rank_of: dict[tuple[str, str], int]) -> None:
        self._rank_of = rank_of
        self._default = len(rank_of)
        #: rank -> insertion-ordered replica set (dict keys used as a set)
        self._buckets: dict[int, dict[ReplicaId, None]] = {}
        #: sorted list of ranks that currently have victims
        self._ranks: list[int] = []
        self.built = False

    def build(self, assignments) -> None:
        """Populate from the current assignment map (insertion order)."""
        for replica in assignments:
            self.add(replica)
        self.built = True

    def add(self, replica: ReplicaId) -> None:
        rank = self._rank_of.get((replica.app, replica.microservice), self._default)
        bucket = self._buckets.get(rank)
        if bucket is None:
            self._buckets[rank] = {replica: None}
            bisect.insort(self._ranks, rank)
        else:
            bucket[replica] = None

    def discard(self, replica: ReplicaId) -> None:
        rank = self._rank_of.get((replica.app, replica.microservice), self._default)
        bucket = self._buckets.get(rank)
        if bucket is None or replica not in bucket:
            return
        del bucket[replica]
        if not bucket:
            del self._buckets[rank]
            i = bisect.bisect_left(self._ranks, rank)
            del self._ranks[i]

    def peek_lowest(self, above_rank: int) -> ReplicaId | None:
        """Next victim with rank strictly greater than ``above_rank``."""
        ranks = self._ranks
        if not ranks:
            return None
        rank = ranks[-1]
        if rank <= above_rank:
            return None
        return next(iter(self._buckets[rank]))


@dataclass
class PackingResult:
    """Outcome of one packing run."""

    #: Final replica -> node assignment (on the working copy).
    assignment: dict[ReplicaId, str] = field(default_factory=dict)
    #: Microservices that could not be placed (app, microservice).
    unplaced: list[tuple[str, str]] = field(default_factory=list)
    #: Replicas deleted by the delete-lower-ranks strategy.
    deleted: list[ReplicaId] = field(default_factory=list)
    #: Replicas migrated by the repacking strategy: replica -> (from, to).
    migrated: dict[ReplicaId, tuple[str, str]] = field(default_factory=dict)


class PackingHeuristic:
    """Criticality-aware bin packing (Algorithm 2).

    ``repack_candidate_nodes`` bounds how many nodes the migration strategy
    examines per placement; the candidates with the most free capacity are
    the ones most likely to be freed up, so a small bound keeps the heuristic
    close to linear without changing its outcome in practice.
    """

    def __init__(
        self,
        allow_migration: bool = True,
        allow_deletion: bool = True,
        repack_candidate_nodes: int = 8,
    ) -> None:
        self.allow_migration = allow_migration
        self.allow_deletion = allow_deletion
        self.repack_candidate_nodes = repack_candidate_nodes

    # -- public API ----------------------------------------------------------
    def pack(self, state: ClusterState, plan: ActivationPlan) -> PackingResult:
        """Pack the plan's activated microservices onto healthy nodes.

        ``state`` must be a working copy the caller is willing to have
        mutated; replicas already running on healthy nodes are kept in place
        whenever possible.
        """
        return self.pack_onto(state, plan)[0]

    def pack_onto(
        self,
        state: ClusterState,
        plan: ActivationPlan,
        node_index: _NodeIndex | None = None,
    ) -> tuple[PackingResult, _NodeIndex]:
        """Like :meth:`pack`, but exposing the node index for reuse.

        Without ``node_index`` this is the classic pack: evict failed-node
        replicas, then build a fresh index.  With ``node_index`` the caller
        provides a persistent index already synchronized to ``state`` (and
        has performed the eviction itself); the pack keeps the index
        up to date through every mutation, so the returned index can be
        carried into the next round by the incremental scheduler.  Both
        modes produce byte-identical packings — index block layout never
        affects best-fit or free-descending scans, only the entry set does.
        """
        result = PackingResult()
        prebuilt = node_index is not None
        if not prebuilt:
            # Remove replicas stranded on failed nodes; they must be restarted.
            state.evict_from_failed_nodes()

        activated = list(plan.activated)
        activated_set = plan.activated_set()
        rank_of = plan.rank_index()

        # Delete running replicas of microservices the planner chose NOT to
        # activate (diagonal scaling: turning off non-critical containers).
        # replica[:2] == (app, microservice); after eviction every assigned
        # replica runs on a healthy node, so the trusted unassign applies.
        if prebuilt:
            index = node_index
            for replica in list(state.assignments):
                if replica[:2] not in activated_set:
                    node_name, new_free = state.unassign_packed(replica)
                    index.update(node_name, new_free)
                    result.deleted.append(replica)
        else:
            for replica in list(state.assignments):
                if replica[:2] not in activated_set:
                    state.unassign_packed(replica)
                    result.deleted.append(replica)
            index = _NodeIndex(state)
        victims = _VictimIndex(rank_of) if self.allow_deletion else None

        applications = state.applications
        running = state.running_view()
        # The fully-running early-out runs on the state's deficit index: at
        # production scale almost every activated entry is already running,
        # and even a per-entry counter lookup would dominate the loop.  The
        # index is consulted live (not snapshotted) because deletions
        # (delete-lower-ranks, all-or-nothing rollback) may change counts
        # mid-loop.
        deficit_get = state._deficit.get
        unplaced_append = result.unplaced.append
        for entry in activated:
            app_name = entry[0]
            lacking = deficit_get(app_name)
            if lacking is None or entry[1] not in lacking:
                continue  # every replica already runs on a healthy node
            placed = self._place_microservice(
                state, index, victims, entry, rank_of, result, applications, running
            )
            if not placed:
                unplaced_append((app_name, entry[1]))

        result.assignment = state.assignments_snapshot()
        return result, index

    # -- internal steps --------------------------------------------------------
    def _place_microservice(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
        applications=None,
        running=None,
    ) -> bool:
        """Place every replica of one microservice; all-or-nothing (Appendix D)."""
        app_name = entry.app
        ms_name = entry.microservice
        if applications is None:
            applications = state.applications
        if running is None:
            running = state.running_view()
        ms = applications[app_name].microservices[ms_name]
        replica_count = ms.replicas
        if running.get((app_name, ms_name), 0) >= replica_count:
            return True  # every replica already runs on a healthy node
        resources = ms.resources
        node_of = state.node_of
        best_fit = index.best_fit
        tuple_new = tuple.__new__
        placed_now: list[ReplicaId] = []
        for idx in range(replica_count):
            # tuple.__new__ skips the generated NamedTuple __new__ wrapper
            replica = tuple_new(ReplicaId, (app_name, ms_name, idx))
            if node_of(replica) is not None:
                continue  # already running on a healthy node — keep in place
            node_name = best_fit(resources)
            if node_name is None:
                node_name = self._find_node_slow(
                    state, index, victims, resources, entry, rank_of, result
                )
            if node_name is None:
                # Roll back replicas of this microservice placed in this round.
                for done in placed_now:
                    self._unassign(state, index, victims, done)
                return False
            self._assign(state, index, victims, replica, node_name)
            placed_now.append(replica)
        return True

    def _assign(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        replica: ReplicaId,
        node_name: str,
    ) -> None:
        new_free = state.assign_packed(replica, node_name)
        index.update(node_name, new_free)
        if victims is not None and victims.built:
            victims.add(replica)

    def _unassign(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        replica: ReplicaId,
    ) -> str:
        node_name, new_free = state.unassign_packed(replica)
        index.update(node_name, new_free)
        if victims is not None and victims.built:
            victims.discard(replica)
        return node_name

    def _find_node_slow(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        demand: Resources,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
    ) -> str | None:
        """Fallback strategies once best-fit found no node (Alg. 2 steps 2-3)."""
        if self.allow_migration:
            node_name = self._repack_to_fit(state, index, victims, demand, result)
            if node_name is not None:
                return node_name
        if self.allow_deletion:
            node_name = self._delete_lower_ranks_to_fit(state, index, victims, demand, entry, rank_of, result)
            if node_name is not None:
                return node_name
        return None

    def _repack_to_fit(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        demand: Resources,
        result: PackingResult,
    ) -> str | None:
        """Try to free up one node by migrating its smallest replicas away.

        Nodes are visited from most free to least free (they need the least
        help to fit the new replica); only the top few candidates are tried.
        Migration moves are applied eagerly; if a candidate still cannot fit
        the demand the moves are kept (they only improve packing) and the
        next candidate is tried, matching the heuristic's greedy character.
        """
        candidates = index.nodes_by_free_desc(self.repack_candidate_nodes)
        demand_of = state.demand_of
        for node_name in candidates:
            if demand.fits_within(state.free_on(node_name)):
                return node_name
            # Single sort on (cpu, replica id) == the naive cpu-keyed stable
            # sort over the name-sorted resident list.
            residents = sorted(
                state.iter_replicas_on(node_name),
                key=lambda r: (demand_of(r.app, r.microservice).cpu, r.app, r.microservice, r.replica),
            )
            # Exclude the candidate from the index while we migrate off it so
            # that best-fit lookups for its residents never pick it again.
            index.remove(node_name)
            for resident in residents:
                if demand.fits_within(state.free_on(node_name)):
                    break
                resident_demand = demand_of(resident.app, resident.microservice)
                target = index.best_fit(resident_demand)
                if target is None:
                    continue
                state.unassign_packed(resident)
                if victims is not None and victims.built:
                    victims.discard(resident)
                self._assign(state, index, victims, resident, target)
                result.migrated[resident] = (node_name, target)
            index.reinsert(node_name)
            if demand.fits_within(state.free_on(node_name)):
                return node_name
        return None

    def _delete_lower_ranks_to_fit(
        self,
        state: ClusterState,
        index: _NodeIndex,
        victims: _VictimIndex | None,
        demand: Resources,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
    ) -> str | None:
        """Delete lower-priority running replicas until the demand fits."""
        if victims is None:
            return None
        if not victims.built:
            victims.build(state.assignments)
        my_rank = rank_of.get((entry.app, entry.microservice), len(rank_of))
        while True:
            victim = victims.peek_lowest(my_rank)
            if victim is None:
                return None
            self._unassign(state, index, victims, victim)
            result.deleted.append(victim)
            candidate = index.best_fit(demand)
            if candidate is not None:
                return candidate
