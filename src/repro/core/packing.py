"""The Phoenix scheduler's packing heuristic (Algorithm 2 / Appendix B).

The packing module maps the planner's globally ordered activation list onto
healthy nodes using a three-pronged strategy:

1. **Best fit** — place the replica on the healthy node with the *least*
   free capacity that can still hold it.
2. **Repack (migration)** — if no node fits, try to free one up by migrating
   smaller replicas off a candidate node onto other nodes.
3. **Delete lower ranks** — as a last resort, delete replicas of
   lower-ranked microservices (from the tail of the planner's list) until
   the replica fits.

All work happens on a *copy* of the cluster state; the agent later applies
the resulting action list to the real cluster.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId, SchedulingError
from repro.core.plan import ActivationPlan, RankedMicroservice


class _NodeIndex:
    """Nodes indexed by free CPU so best-fit lookups avoid linear scans.

    This mirrors the paper's use of sorted containers in the packing module.
    The index is maintained incrementally as replicas are placed or removed.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self._entries: list[tuple[float, str]] = []
        for node in state.healthy_nodes():
            free = state.free_on(node.name)
            bisect.insort(self._entries, (free.cpu, node.name))

    def remove(self, node_name: str) -> None:
        free = self._state.free_on(node_name).cpu
        index = bisect.bisect_left(self._entries, (free, node_name))
        while index < len(self._entries):
            if self._entries[index][1] == node_name:
                del self._entries[index]
                return
            if self._entries[index][0] > free:
                break
            index += 1
        # Fallback (should not happen): linear removal.
        self._entries = [e for e in self._entries if e[1] != node_name]

    def reinsert(self, node_name: str) -> None:
        free = self._state.free_on(node_name).cpu
        bisect.insort(self._entries, (free, node_name))

    def best_fit(self, demand: Resources) -> str | None:
        """Healthy node with the smallest free capacity >= demand, or None."""
        start = bisect.bisect_left(self._entries, (demand.cpu - 1e-9, ""))
        for free_cpu, node_name in self._entries[start:]:
            if demand.fits_within(self._state.free_on(node_name)):
                return node_name
        return None

    def nodes_by_free_desc(self) -> list[str]:
        return [name for _, name in reversed(self._entries)]


@dataclass
class PackingResult:
    """Outcome of one packing run."""

    #: Final replica -> node assignment (on the working copy).
    assignment: dict[ReplicaId, str] = field(default_factory=dict)
    #: Microservices that could not be placed (app, microservice).
    unplaced: list[tuple[str, str]] = field(default_factory=list)
    #: Replicas deleted by the delete-lower-ranks strategy.
    deleted: list[ReplicaId] = field(default_factory=list)
    #: Replicas migrated by the repacking strategy: replica -> (from, to).
    migrated: dict[ReplicaId, tuple[str, str]] = field(default_factory=dict)


class PackingHeuristic:
    """Criticality-aware bin packing (Algorithm 2).

    ``repack_candidate_nodes`` bounds how many nodes the migration strategy
    examines per placement; the candidates with the most free capacity are
    the ones most likely to be freed up, so a small bound keeps the heuristic
    close to linear without changing its outcome in practice.
    """

    def __init__(
        self,
        allow_migration: bool = True,
        allow_deletion: bool = True,
        repack_candidate_nodes: int = 8,
    ) -> None:
        self.allow_migration = allow_migration
        self.allow_deletion = allow_deletion
        self.repack_candidate_nodes = repack_candidate_nodes

    # -- public API ----------------------------------------------------------
    def pack(self, state: ClusterState, plan: ActivationPlan) -> PackingResult:
        """Pack the plan's activated microservices onto healthy nodes.

        ``state`` must be a working copy the caller is willing to have
        mutated; replicas already running on healthy nodes are kept in place
        whenever possible.
        """
        result = PackingResult()
        # Remove replicas stranded on failed nodes; they must be restarted.
        state.evict_from_failed_nodes()

        activated = list(plan.activated)
        activated_set = {(e.app, e.microservice) for e in activated}
        rank_of = {(e.app, e.microservice): i for i, e in enumerate(plan.ranked)}

        # Delete running replicas of microservices the planner chose NOT to
        # activate (diagonal scaling: turning off non-critical containers).
        for replica, node_name in list(state.assignments.items()):
            if (replica.app, replica.microservice) not in activated_set:
                state.unassign(replica)
                result.deleted.append(replica)

        index = _NodeIndex(state)

        for entry in activated:
            placed = self._place_microservice(state, index, entry, rank_of, result)
            if not placed:
                result.unplaced.append((entry.app, entry.microservice))

        result.assignment = state.assignments
        return result

    # -- internal steps --------------------------------------------------------
    def _place_microservice(
        self,
        state: ClusterState,
        index: _NodeIndex,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
    ) -> bool:
        """Place every replica of one microservice; all-or-nothing (Appendix D)."""
        ms = state.microservice(entry.app, entry.microservice)
        placed_now: list[ReplicaId] = []
        for replica in state.iter_replicas(entry.app, entry.microservice):
            if state.node_of(replica) is not None:
                continue  # already running on a healthy node — keep in place
            node_name = self._find_node(state, index, ms.resources, entry, rank_of, result)
            if node_name is None:
                # Roll back replicas of this microservice placed in this round.
                for done in placed_now:
                    node = state.node_of(done)
                    assert node is not None
                    index.remove(node)
                    state.unassign(done)
                    index.reinsert(node)
                return False
            self._assign(state, index, replica, node_name)
            placed_now.append(replica)
        return True

    def _assign(self, state: ClusterState, index: _NodeIndex, replica: ReplicaId, node_name: str) -> None:
        index.remove(node_name)
        state.assign(replica, node_name)
        index.reinsert(node_name)

    def _find_node(
        self,
        state: ClusterState,
        index: _NodeIndex,
        demand: Resources,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
    ) -> str | None:
        node_name = index.best_fit(demand)
        if node_name is not None:
            return node_name
        if self.allow_migration:
            node_name = self._repack_to_fit(state, index, demand, result)
            if node_name is not None:
                return node_name
        if self.allow_deletion:
            node_name = self._delete_lower_ranks_to_fit(state, index, demand, entry, rank_of, result)
            if node_name is not None:
                return node_name
        return None

    def _repack_to_fit(
        self,
        state: ClusterState,
        index: _NodeIndex,
        demand: Resources,
        result: PackingResult,
    ) -> str | None:
        """Try to free up one node by migrating its smallest replicas away.

        Nodes are visited from most free to least free (they need the least
        help to fit the new replica); only the top few candidates are tried.
        Migration moves are applied eagerly; if a candidate still cannot fit
        the demand the moves are kept (they only improve packing) and the
        next candidate is tried, matching the heuristic's greedy character.
        """
        candidates = index.nodes_by_free_desc()[: self.repack_candidate_nodes]
        for node_name in candidates:
            if demand.fits_within(state.free_on(node_name)):
                return node_name
            residents = sorted(
                state.replicas_on(node_name),
                key=lambda r: state.microservice(r.app, r.microservice).resources.cpu,
            )
            # Exclude the candidate from the index while we migrate off it so
            # that best-fit lookups for its residents never pick it again.
            index.remove(node_name)
            for resident in residents:
                if demand.fits_within(state.free_on(node_name)):
                    break
                resident_demand = state.microservice(resident.app, resident.microservice).resources
                target = index.best_fit(resident_demand)
                if target is None:
                    continue
                state.unassign(resident)
                self._assign(state, index, resident, target)
                result.migrated[resident] = (node_name, target)
            index.reinsert(node_name)
            if demand.fits_within(state.free_on(node_name)):
                return node_name
        return None

    def _delete_lower_ranks_to_fit(
        self,
        state: ClusterState,
        index: _NodeIndex,
        demand: Resources,
        entry: RankedMicroservice,
        rank_of: dict[tuple[str, str], int],
        result: PackingResult,
    ) -> str | None:
        """Delete lower-priority running replicas until the demand fits."""
        my_rank = rank_of.get((entry.app, entry.microservice), len(rank_of))
        victims = sorted(
            (
                replica
                for replica in state.assignments
                if rank_of.get((replica.app, replica.microservice), len(rank_of)) > my_rank
            ),
            key=lambda r: rank_of.get((r.app, r.microservice), len(rank_of)),
            reverse=True,
        )
        for victim in victims:
            node_name = state.node_of(victim)
            assert node_name is not None
            index.remove(node_name)
            state.unassign(victim)
            index.reinsert(node_name)
            result.deleted.append(victim)
            candidate = index.best_fit(demand)
            if candidate is not None:
                return candidate
        return None
