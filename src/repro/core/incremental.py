"""Incremental reconciliation: per-round cost follows churn, not cluster size.

The classic schedule stage pays O(cluster) per round even when one node
blinked: it copies the live state (O(nodes) dict clones), scans every node
for eviction, and rebuilds the packing node index from scratch
(O(nodes log nodes)).  :class:`IncrementalScheduler` replaces that with a
**persistent scratch state** and a **persistent node index** that are
realigned with the live state each round using the dirty set the live state
accumulated (:meth:`repro.cluster.state.ClusterState.drain_dirty`), making
the round cost O(replicas + containers + dirty nodes · log nodes).

Byte-identity
-------------
Incremental rounds produce output *byte-identical* to the classic
copy-and-repack path (and therefore to the golden reference stages, which
the classic path is already pinned to).  The argument:

1. The scratch's assignment map is rebuilt each round as an order-preserving
   clone of the live map — exactly what ``state.copy()`` does — so every
   order-sensitive consumer (the delete-non-activated scan, the
   delete-lower-ranks victim order) sees the same sequence.
2. Per-node usage floats are *copied* from the live state for every node
   that changed on either side since the last round; unchanged nodes were
   equal before and were not touched, so equality is inductive.  No float is
   ever re-derived in a different accumulation order.
3. Failed-node eviction is re-derived from the live map every round (the
   live state keeps replicas assigned to failed nodes, exactly like the
   fresh copy the classic path evicts from).
4. The persistent node index is updated to contain exactly the
   ``(free cpu, name, free memory)`` entries a fresh build would contain.
   Its block layout differs, but both ``best_fit`` and
   ``nodes_by_free_desc`` scan entries in globally sorted order, so the
   layout is unobservable.
5. With an equivalent state and an equivalent index, the pack runs the very
   same code (:meth:`repro.core.packing.PackingHeuristic.pack_onto`), and
   the differ is a pure function of (live state, packing).

Fallback conditions (the round runs the classic full recompute, which also
re-seeds the scratch):

============================  ==================================================
condition                      reason
============================  ==================================================
first round / new state        nothing to reuse yet
``invalidate()`` called        forced full recompute (``reconcile(force=True)``)
structural dirty               nodes/applications added or removed
drain token mismatch           another consumer drained the dirty set
dirty nodes > threshold        rebuilding is cheaper than resyncing
non-stock packer               only :class:`PackingHeuristic` maintains the index
============================  ==================================================
"""

from __future__ import annotations

import weakref

from repro import obs
from repro.cluster.state import ClusterState
from repro.core.packing import PackingHeuristic, _NodeIndex
from repro.core.plan import ActivationPlan, SchedulePlan

#: Fraction of the cluster that may be dirty before a full rebuild is
#: cheaper than an incremental resync (capacity-target moves that fail or
#: recover a large slice of the cluster fall back through this).
DEFAULT_DIRTY_NODE_THRESHOLD = 0.25


class IncrementalScheduler:
    """Schedule stage with a persistent scratch state and node index.

    Drop-in for the classic ``working = state.copy(share_nodes=True)`` /
    pack / diff sequence in :class:`repro.api.engine.StagePipeline` and
    :class:`repro.core.scheduler.PhoenixScheduler`.  One instance tracks one
    live state (the one it last scheduled); scheduling a different state
    object falls back to the classic path and re-targets the scratch.

    Parameters
    ----------
    packer:
        The stock :class:`~repro.core.packing.PackingHeuristic`; other
        packers cannot maintain the persistent index.
    differ:
        The diff stage (``(live, packing) -> list[Action]``); any differ
        works — it is a pure function evaluated on the live state.
    dirty_node_threshold:
        Fraction of the cluster that may be dirty before falling back.
    """

    def __init__(
        self,
        packer: PackingHeuristic,
        differ,
        dirty_node_threshold: float = DEFAULT_DIRTY_NODE_THRESHOLD,
    ) -> None:
        if not isinstance(packer, PackingHeuristic):
            raise TypeError(
                "IncrementalScheduler requires the stock PackingHeuristic, got "
                f"{type(packer).__name__}"
            )
        if not 0.0 < dirty_node_threshold <= 1.0:
            raise ValueError("dirty_node_threshold must be in (0, 1]")
        self._packer = packer
        self._differ = differ
        self._threshold = dirty_node_threshold
        self._tracked: weakref.ref | None = None
        self._token = -1
        self._scratch: ClusterState | None = None
        self._index: _NodeIndex | None = None
        #: The state of the previous schedule() call, whatever it was —
        #: used to adopt a new live state only once it repeats, so callers
        #: that pass a fresh copy every round (the AdaptLab ``respond``
        #: pattern) never pin a scratch that can never be reused.
        self._last_seen: weakref.ref | None = None
        #: Round counters, for observability and the fallback tests.
        self.fast_rounds = 0
        self.full_rounds = 0
        self.last_mode = "none"

    def invalidate(self) -> None:
        """Drop the scratch so the next round is a full recompute."""
        self._tracked = None
        self._token = -1
        self._scratch = None
        self._index = None

    def schedule(self, state: ClusterState, plan: ActivationPlan) -> SchedulePlan:
        """One schedule round; incremental when the scratch is reusable."""
        tracked = self._tracked() if self._tracked is not None else None
        if self._tracked is not None and tracked is None:
            self.invalidate()  # the tracked state died: free scratch + index
        try:
            if self._scratch is not None and tracked is state:
                schedule = self._fast_schedule(state, plan)
                if schedule is not None:
                    self.fast_rounds += 1
                    self.last_mode = "incremental"
                    registry = obs.registry()
                    if registry.enabled:
                        registry.counter("engine.incremental.fast_rounds").inc()
                    return schedule
            # Seed (or re-seed) the scratch only for states that have shown
            # reuse potential: the tracked state itself, or a state seen on
            # two consecutive rounds (a reconcile loop to adopt).  One-shot
            # states — fresh copies passed by respond()-style callers —
            # run classic without pinning a scratch that can never be
            # reused (and without displacing a live one).
            retain = tracked is state or (
                self._last_seen is not None and self._last_seen() is state
            )
            self.full_rounds += 1
            self.last_mode = "full"
            registry = obs.registry()
            if registry.enabled:
                registry.counter("engine.incremental.full_rounds").inc()
            return self._full_schedule(state, plan, retain)
        finally:
            self._last_seen = weakref.ref(state)

    # -- the two paths -------------------------------------------------------
    def _full_schedule(
        self, live: ClusterState, plan: ActivationPlan, retain: bool
    ) -> SchedulePlan:
        """Classic copy-and-repack; the working copy becomes the new scratch."""
        live.drain_dirty()
        working = live.copy(share_nodes=True)
        packing, index = self._packer.pack_onto(working, plan)
        if retain:
            self._scratch = working
            self._index = index
            self._tracked = weakref.ref(live)
            self._token = live.generation
        actions = self._differ(live, packing)
        return SchedulePlan(
            target_assignment=packing.assignment,
            actions=actions,
            unplaced=packing.unplaced,
        )

    def _fast_schedule(self, live: ClusterState, plan: ActivationPlan) -> SchedulePlan | None:
        """Incremental round, or ``None`` when a fallback condition holds."""
        dirty = live.drain_dirty()
        if dirty.structural or dirty.base_generation != self._token:
            return None
        scratch = self._scratch
        own = scratch.drain_dirty()
        dirty_nodes = set(dirty.nodes)
        dirty_nodes.update(own.nodes)
        if len(dirty_nodes) > self._threshold * len(live.nodes):
            return None

        # Realign the scratch with the live state: exact assignment-map
        # clone, per-node floats copied for everything that changed on
        # either side, failed nodes re-derived so the eviction below
        # replays what a fresh copy would evict.
        resync_nodes = dirty_nodes | live.failed_names()
        scratch.resync_from(live, resync_nodes)
        scratch.evict_from_failed_nodes()

        index = self._index
        for name in dirty_nodes:
            index.refresh(name)

        packing, index = self._packer.pack_onto(scratch, plan, node_index=index)
        self._index = index
        self._token = dirty.end_generation
        actions = self._differ(live, packing)
        return SchedulePlan(
            target_assignment=packing.assignment,
            actions=actions,
            unplaced=packing.unplaced,
        )
