"""Criticality tags (re-exported from :mod:`repro.criticality`).

The canonical implementation lives at the package root so that the cluster
substrate can use tags without importing the whole Phoenix core.
"""

from repro.criticality import (
    DEFAULT_LEVELS,
    HIGHEST_CRITICALITY,
    LOWEST_DEFAULT_CRITICALITY,
    CriticalityTag,
    criticality_breakdown,
    normalize_tags,
)

__all__ = [
    "DEFAULT_LEVELS",
    "HIGHEST_CRITICALITY",
    "LOWEST_DEFAULT_CRITICALITY",
    "CriticalityTag",
    "criticality_breakdown",
    "normalize_tags",
]
