"""Naive reference implementations of the plan → pack → diff hot path.

This module preserves the original (pre-optimization) implementations of

* the global ranking loop (:func:`reference_rank`),
* the packing heuristic (:class:`ReferencePackingHeuristic`), and
* the schedule differ (:func:`reference_diff`)

exactly as they shipped in the seed.  They are deliberately simple and
super-linear: the ranker rescans every application cursor per activation,
the packing node index is a flat ``bisect``-maintained list, and the
delete-lower-ranks strategy re-sorts all assignments on every unplaced
container.

They exist for two reasons:

1. **Golden equivalence** — the optimized implementations in
   :mod:`repro.core.planner`, :mod:`repro.core.packing` and
   :mod:`repro.core.scheduler` must produce byte-identical plans, packings
   and action lists.  ``tests/test_planner_equivalence.py`` asserts this
   across randomized scenarios, and ``benchmarks/bench_hotpath.py`` uses the
   reference as the "before" column of the perf baseline.
2. **Generality fallback** — operator objectives whose ``score`` depends on
   *other* applications' allocations (``independent_scores = False``) cannot
   use the lazy-rescore heap; :class:`~repro.core.planner.GlobalRanker`
   falls back to :func:`reference_rank` for them.

Do not optimize this module.
"""

from __future__ import annotations

import bisect
from typing import Mapping

from repro.cluster.application import Application
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import OperatorObjective
from repro.core.plan import Action, ActionKind, ActivationPlan, RankedMicroservice


class _ReferenceCursor:
    """Iteration state over one application's priority list."""

    __slots__ = ("app", "order", "index")

    def __init__(self, app: Application, order: list[str]) -> None:
        self.app = app
        self.order = order
        self.index = 0

    def current(self) -> str | None:
        if self.index >= len(self.order):
            return None
        return self.order[self.index]

    def advance(self) -> None:
        self.index += 1


def reference_rank(
    objective: OperatorObjective,
    applications: Mapping[str, Application],
    app_rank: Mapping[str, list[str]],
    capacity: float,
) -> ActivationPlan:
    """The seed's global ranking loop (Alg. 1, lines 21-30), verbatim.

    Every iteration re-scores the head container of *every* application and
    picks the argmax (ties break on the application name), which is
    O(containers x applications).
    """
    objective.prepare(applications, capacity)
    allocated = {name: 0.0 for name in applications}
    cursors = {
        name: _ReferenceCursor(applications[name], list(app_rank.get(name, [])))
        for name in applications
    }

    ranked: list[RankedMicroservice] = []
    activated: list[RankedMicroservice] = []
    remaining = capacity
    blocked: set[str] = set()

    while True:
        best_app: str | None = None
        best_score = float("-inf")
        for name, cursor in cursors.items():
            ms_name = cursor.current()
            if ms_name is None:
                continue
            ms = cursor.app.get(ms_name)
            score = objective.score(cursor.app, ms, allocated)
            if score > best_score or (score == best_score and (best_app is None or name < best_app)):
                best_score = score
                best_app = name
        if best_app is None:
            break

        cursor = cursors[best_app]
        ms_name = cursor.current()
        assert ms_name is not None
        ms = cursor.app.get(ms_name)
        demand = ms.total_resources.cpu
        entry = RankedMicroservice(best_app, ms_name, demand)
        ranked.append(entry)
        if best_app not in blocked and demand <= remaining + 1e-9:
            activated.append(entry)
            remaining -= demand
            allocated[best_app] += demand
        else:
            blocked.add(best_app)
        cursor.advance()

    return ActivationPlan(
        ranked=ranked,
        activated=activated,
        capacity=capacity,
        objective=objective.name,
    )


class _ReferenceNodeIndex:
    """The seed's flat sorted-list node index (O(nodes) memory-miss scans)."""

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self._entries: list[tuple[float, str]] = []
        for node in state.healthy_nodes():
            free = state.free_on(node.name)
            bisect.insort(self._entries, (free.cpu, node.name))

    def remove(self, node_name: str) -> None:
        free = self._state.free_on(node_name).cpu
        index = bisect.bisect_left(self._entries, (free, node_name))
        while index < len(self._entries):
            if self._entries[index][1] == node_name:
                del self._entries[index]
                return
            if self._entries[index][0] > free:
                break
            index += 1
        # Fallback (should not happen): linear removal.
        self._entries = [e for e in self._entries if e[1] != node_name]

    def reinsert(self, node_name: str) -> None:
        free = self._state.free_on(node_name).cpu
        bisect.insort(self._entries, (free, node_name))

    def best_fit(self, demand: Resources) -> str | None:
        start = bisect.bisect_left(self._entries, (demand.cpu - 1e-9, ""))
        for free_cpu, node_name in self._entries[start:]:
            if demand.fits_within(self._state.free_on(node_name)):
                return node_name
        return None

    def nodes_by_free_desc(self) -> list[str]:
        return [name for _, name in reversed(self._entries)]


class ReferencePackingHeuristic:
    """The seed's criticality-aware bin packing (Algorithm 2), verbatim.

    Mirrors :class:`repro.core.packing.PackingHeuristic` behaviour exactly
    but with the original data structures: flat node index, full re-sort of
    all assignments per delete-lower-ranks call, double sort of node
    residents during repacking.
    """

    def __init__(
        self,
        allow_migration: bool = True,
        allow_deletion: bool = True,
        repack_candidate_nodes: int = 8,
    ) -> None:
        self.allow_migration = allow_migration
        self.allow_deletion = allow_deletion
        self.repack_candidate_nodes = repack_candidate_nodes

    def pack(self, state: ClusterState, plan: ActivationPlan):
        from repro.core.packing import PackingResult

        result = PackingResult()
        state.evict_from_failed_nodes()

        activated = list(plan.activated)
        activated_set = {(e.app, e.microservice) for e in activated}
        rank_of = {(e.app, e.microservice): i for i, e in enumerate(plan.ranked)}

        for replica in list(state.assignments):
            if (replica.app, replica.microservice) not in activated_set:
                state.unassign(replica)
                result.deleted.append(replica)

        index = _ReferenceNodeIndex(state)

        for entry in activated:
            placed = self._place_microservice(state, index, entry, rank_of, result)
            if not placed:
                result.unplaced.append((entry.app, entry.microservice))

        result.assignment = dict(state.assignments)
        return result

    def _place_microservice(self, state, index, entry, rank_of, result) -> bool:
        ms = state.microservice(entry.app, entry.microservice)
        placed_now: list[ReplicaId] = []
        for replica in state.iter_replicas(entry.app, entry.microservice):
            if state.node_of(replica) is not None:
                continue
            node_name = self._find_node(state, index, ms.resources, entry, rank_of, result)
            if node_name is None:
                for done in placed_now:
                    node = state.node_of(done)
                    assert node is not None
                    index.remove(node)
                    state.unassign(done)
                    index.reinsert(node)
                return False
            self._assign(state, index, replica, node_name)
            placed_now.append(replica)
        return True

    def _assign(self, state, index, replica, node_name) -> None:
        index.remove(node_name)
        state.assign(replica, node_name)
        index.reinsert(node_name)

    def _find_node(self, state, index, demand, entry, rank_of, result):
        node_name = index.best_fit(demand)
        if node_name is not None:
            return node_name
        if self.allow_migration:
            node_name = self._repack_to_fit(state, index, demand, result)
            if node_name is not None:
                return node_name
        if self.allow_deletion:
            node_name = self._delete_lower_ranks_to_fit(state, index, demand, entry, rank_of, result)
            if node_name is not None:
                return node_name
        return None

    def _repack_to_fit(self, state, index, demand, result):
        candidates = index.nodes_by_free_desc()[: self.repack_candidate_nodes]
        for node_name in candidates:
            if demand.fits_within(state.free_on(node_name)):
                return node_name
            residents = sorted(
                state.replicas_on(node_name),
                key=lambda r: state.microservice(r.app, r.microservice).resources.cpu,
            )
            index.remove(node_name)
            for resident in residents:
                if demand.fits_within(state.free_on(node_name)):
                    break
                resident_demand = state.microservice(resident.app, resident.microservice).resources
                target = index.best_fit(resident_demand)
                if target is None:
                    continue
                state.unassign(resident)
                self._assign(state, index, resident, target)
                result.migrated[resident] = (node_name, target)
            index.reinsert(node_name)
            if demand.fits_within(state.free_on(node_name)):
                return node_name
        return None

    def _delete_lower_ranks_to_fit(self, state, index, demand, entry, rank_of, result):
        my_rank = rank_of.get((entry.app, entry.microservice), len(rank_of))
        victims = sorted(
            (
                replica
                for replica in state.assignments
                if rank_of.get((replica.app, replica.microservice), len(rank_of)) > my_rank
            ),
            key=lambda r: rank_of.get((r.app, r.microservice), len(rank_of)),
            reverse=True,
        )
        for victim in victims:
            node_name = state.node_of(victim)
            assert node_name is not None
            index.remove(node_name)
            state.unassign(victim)
            index.reinsert(node_name)
            result.deleted.append(victim)
            candidate = index.best_fit(demand)
            if candidate is not None:
                return candidate
        return None


def reference_diff(live: ClusterState, packing) -> list[Action]:
    """The seed's action differ, verbatim (per-replica ``node()`` lookups)."""
    live_assignment = dict(live.assignments)
    target = packing.assignment

    deletions: list[Action] = []
    migrations: list[Action] = []
    starts: list[Action] = []

    for replica, live_node in live_assignment.items():
        target_node = target.get(replica)
        node_failed = live.node(live_node).failed
        if target_node is None:
            if not node_failed:
                deletions.append(Action(ActionKind.DELETE, replica, source_node=live_node))
        elif target_node != live_node:
            if node_failed:
                starts.append(Action(ActionKind.START, replica, target_node=target_node))
            else:
                migrations.append(
                    Action(
                        ActionKind.MIGRATE,
                        replica,
                        target_node=target_node,
                        source_node=live_node,
                    )
                )

    for replica, target_node in target.items():
        if replica not in live_assignment:
            starts.append(Action(ActionKind.START, replica, target_node=target_node))

    def sort_key(action: Action) -> tuple[str, str, int]:
        return (action.replica.app, action.replica.microservice, action.replica.replica)

    deletions.sort(key=sort_key)
    migrations.sort(key=sort_key)
    starts.sort(key=sort_key)
    return [*deletions, *migrations, *starts]
