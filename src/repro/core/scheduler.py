"""Phoenix scheduler: turn an activation plan into an executable action list.

The scheduler runs the packing heuristic on a *copy* of the live cluster
state and then diffs the packed target assignment against the live
assignment to produce an ordered list of DELETE, MIGRATE and START actions
(§4.2).  The Phoenix agent (see :mod:`repro.core.controller`) executes the
actions against the underlying cluster scheduler.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState, ReplicaId
from repro.core.packing import PackingHeuristic, PackingResult
from repro.core.plan import Action, ActionKind, ActivationPlan, SchedulePlan


class PhoenixScheduler:
    """Maps the planner's activation list to nodes and emits actions."""

    def __init__(self, allow_migration: bool = True, allow_deletion: bool = True) -> None:
        self._packer = PackingHeuristic(
            allow_migration=allow_migration,
            allow_deletion=allow_deletion,
        )

    @property
    def packer(self) -> PackingHeuristic:
        return self._packer

    def schedule(self, state: ClusterState, plan: ActivationPlan) -> SchedulePlan:
        """Produce a :class:`SchedulePlan` for ``plan`` on ``state``.

        ``state`` is not mutated; all packing happens on a copy.
        """
        working = state.copy()
        packing = self._packer.pack(working, plan)
        actions = self._diff(state, packing)
        return SchedulePlan(
            target_assignment=dict(packing.assignment),
            actions=actions,
            unplaced=list(packing.unplaced),
        )

    @staticmethod
    def _diff(live: ClusterState, packing: PackingResult) -> list[Action]:
        """Compute actions that transform the live assignment into the target."""
        live_assignment = live.assignments
        target = packing.assignment

        deletions: list[Action] = []
        migrations: list[Action] = []
        starts: list[Action] = []

        for replica, live_node in live_assignment.items():
            target_node = target.get(replica)
            node_failed = live.node(live_node).failed
            if target_node is None:
                # Replica should not run any more.  If its node failed there
                # is nothing to delete (Kubernetes garbage-collects it when
                # the node returns); otherwise issue an explicit deletion.
                if not node_failed:
                    deletions.append(
                        Action(ActionKind.DELETE, replica, source_node=live_node)
                    )
            elif target_node != live_node:
                if node_failed:
                    # The old copy is gone with its node: a plain restart.
                    starts.append(
                        Action(ActionKind.START, replica, target_node=target_node)
                    )
                else:
                    migrations.append(
                        Action(
                            ActionKind.MIGRATE,
                            replica,
                            target_node=target_node,
                            source_node=live_node,
                        )
                    )

        for replica, target_node in target.items():
            if replica not in live_assignment:
                starts.append(Action(ActionKind.START, replica, target_node=target_node))

        def sort_key(action: Action) -> tuple[str, str, int]:
            return (action.replica.app, action.replica.microservice, action.replica.replica)

        deletions.sort(key=sort_key)
        migrations.sort(key=sort_key)
        starts.sort(key=sort_key)
        return [*deletions, *migrations, *starts]


def apply_schedule(state: ClusterState, schedule: SchedulePlan) -> None:
    """Apply a schedule's target assignment directly to a cluster state.

    This is the "instantaneous" execution path used by AdaptLab simulations
    (where action latencies are not modelled); the Kubernetes-backed agent in
    :mod:`repro.core.controller` executes actions one by one instead.
    """
    for replica in list(state.assignments):
        state.unassign(replica)
    for replica, node_name in schedule.target_assignment.items():
        state.assign(replica, node_name)
