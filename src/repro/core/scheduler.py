"""Phoenix scheduler: turn an activation plan into an executable action list.

The scheduler runs the packing heuristic on a *copy* of the live cluster
state and then diffs the packed target assignment against the live
assignment to produce an ordered list of DELETE, MIGRATE and START actions
(§4.2).  The Phoenix agent (see :mod:`repro.core.controller`) executes the
actions against the underlying cluster scheduler.
"""

from __future__ import annotations

from operator import itemgetter

from repro.cluster.state import ClusterState, ReplicaId
from repro.core.packing import PackingHeuristic, PackingResult
from repro.core.plan import Action, ActionKind, ActivationPlan, SchedulePlan, make_action


class PhoenixScheduler:
    """Maps the planner's activation list to nodes and emits actions.

    With ``incremental`` the scheduler keeps a persistent scratch state and
    node index across calls (see :mod:`repro.core.incremental`) so repeated
    scheduling rounds against the *same* live state cost O(churn) instead of
    O(cluster) — byte-identical output either way.  Off by default here;
    the engine pipeline enables it through
    :class:`repro.api.config.EngineConfig`.
    """

    def __init__(
        self,
        allow_migration: bool = True,
        allow_deletion: bool = True,
        incremental: bool = False,
    ) -> None:
        self._packer = PackingHeuristic(
            allow_migration=allow_migration,
            allow_deletion=allow_deletion,
        )
        self._incremental = None
        if incremental:
            from repro.core.incremental import IncrementalScheduler

            self._incremental = IncrementalScheduler(self._packer, diff_actions)

    @property
    def packer(self) -> PackingHeuristic:
        return self._packer

    def schedule(self, state: ClusterState, plan: ActivationPlan) -> SchedulePlan:
        """Produce a :class:`SchedulePlan` for ``plan`` on ``state``.

        ``state`` is not mutated; all packing happens on a copy (classic
        mode) or on the persistent scratch (incremental mode).  Packing
        never changes node health or labels, so the working copy shares the
        node objects with the live state.
        """
        if self._incremental is not None:
            return self._incremental.schedule(state, plan)
        working = state.copy(share_nodes=True)
        packing = self._packer.pack(working, plan)
        actions = diff_actions(state, packing)
        # ``packing`` is local to this call, so the SchedulePlan can take
        # ownership of its assignment/unplaced containers without copying.
        return SchedulePlan(
            target_assignment=packing.assignment,
            actions=actions,
            unplaced=packing.unplaced,
        )


def diff_actions(live: ClusterState, packing: PackingResult) -> list[Action]:
    """Compute actions that transform the live assignment into the target.

    The stock fast :class:`~repro.api.stages.Differ` stage (golden
    counterpart: :func:`repro.core.reference.reference_diff`).  The per-node
    failed flag is looked up once per node (not once per replica), and each
    action list is sorted by a key tuple precomputed at append time instead
    of per-comparison attribute access.
    """
    # Raw dict access (not the read-only proxy): the differ only reads, and
    # proxy dispatch is measurable at one iteration per replica per round.
    live_assignment = live._assignments
    target = packing.assignment
    failed = live.failed_names()

    # ReplicaId is a named tuple whose field order is exactly the action
    # sort key (app, microservice, replica), so the replica itself is the
    # precomputed key — no per-comparison attribute tuples.
    deletions: list[tuple[ReplicaId, Action]] = []
    migrations: list[tuple[ReplicaId, Action]] = []
    starts: list[tuple[ReplicaId, Action]] = []
    target_get = target.get
    DELETE = ActionKind.DELETE
    MIGRATE = ActionKind.MIGRATE
    START = ActionKind.START

    for replica, live_node in live_assignment.items():
        target_node = target_get(replica)
        if target_node is None:
            # Replica should not run any more.  If its node failed there
            # is nothing to delete (Kubernetes garbage-collects it when
            # the node returns); otherwise issue an explicit deletion.
            if live_node not in failed:
                deletions.append(
                    (replica, make_action(DELETE, replica, source_node=live_node))
                )
        elif target_node != live_node:
            if live_node in failed:
                # The old copy is gone with its node: a plain restart.
                starts.append(
                    (replica, make_action(START, replica, target_node=target_node))
                )
            else:
                migrations.append(
                    (
                        replica,
                        make_action(
                            MIGRATE,
                            replica,
                            target_node=target_node,
                            source_node=live_node,
                        ),
                    )
                )

    for replica, target_node in target.items():
        if replica not in live_assignment:
            starts.append(
                (replica, make_action(START, replica, target_node=target_node))
            )

    first = itemgetter(0)
    deletions.sort(key=first)
    migrations.sort(key=first)
    starts.sort(key=first)
    actions = [action for _, action in deletions]
    actions.extend(action for _, action in migrations)
    actions.extend(action for _, action in starts)
    return actions


#: Backwards-compatible alias: pre-engine code (and the equivalence suite)
#: reaches the differ as ``PhoenixScheduler._diff``.
PhoenixScheduler._diff = staticmethod(diff_actions)


def apply_schedule(state: ClusterState, schedule: SchedulePlan) -> None:
    """Apply a schedule's target assignment directly to a cluster state.

    This is the "instantaneous" execution path used by AdaptLab simulations
    (where action latencies are not modelled); the Kubernetes-backed agent in
    :mod:`repro.core.controller` executes actions one by one instead.

    ``apply_schedule`` enacts the *target assignment* wholesale — replicas
    absent from the target (e.g. stranded on failed nodes, where the differ
    deliberately emits no DELETE) end up unassigned.  :func:`apply_actions`
    is the incremental counterpart that replays an action list.
    """
    for replica in list(state.assignments):
        state.unassign(replica)
    for replica, node_name in schedule.target_assignment.items():
        state.assign(replica, node_name)


def apply_actions(state: ClusterState, actions: list[Action]) -> None:
    """Replay an action list against a bare cluster state, instantaneously.

    The one shared code path for incremental action application: the
    engine's default executor reaches it through
    :class:`repro.core.controller.StateBackend`, which used to carry its own
    copy of this logic.  Semantics mirror a real agent executing against a
    cluster scheduler:

    * DELETE of an already-gone replica is a no-op (the node failed and the
      cluster garbage-collected the pod);
    * MIGRATE/START of a replica with a stale placement drops the old
      placement first.

    Application is two-phase — every removal (deletes, migration sources,
    stale placements) lands before any placement.  Migrations within one
    plan may swap capacity between nodes (A moves onto the node B vacates);
    replaying them strictly in list order can transiently over-commit a node
    and raise a spurious :class:`~repro.cluster.state.SchedulingError` even
    though the target assignment is feasible.  A real agent migrates by
    delete-then-start anyway, and the end state is identical whenever the
    in-order replay would have succeeded.
    """
    placements: list[tuple[ReplicaId, str]] = []
    for action in actions:
        kind = action.kind
        if state.node_of(action.replica) is not None:
            state.unassign(action.replica)
        if kind is not ActionKind.DELETE:
            placements.append((action.replica, action.target_node))
    for replica, target_node in placements:
        state.assign(replica, target_node)
