"""Phoenix core: criticality tags, planner, scheduler, LP and controller."""

from repro.core.controller import ClusterBackend, PhoenixController, ReconcileReport, StateBackend
from repro.core.criticality import (
    HIGHEST_CRITICALITY,
    LOWEST_DEFAULT_CRITICALITY,
    CriticalityTag,
    criticality_breakdown,
    normalize_tags,
)
from repro.core.dynamic_tags import (
    CriticalityTagAPI,
    DynamicTaggingPolicy,
    TagRule,
    TagUpdateRejected,
    TaggingContext,
    business_hours_rule,
    off_hours_rule,
    overload_rule,
)
from repro.core.lp import LPCost, LPFair, LPSizeError, LPSolution
from repro.core.objectives import (
    FairnessObjective,
    OperatorObjective,
    RevenueObjective,
    WeightedObjective,
    water_fill_shares,
)
from repro.core.packing import PackingHeuristic, PackingResult
from repro.core.plan import (
    Action,
    ActionKind,
    ActivationPlan,
    RankedMicroservice,
    SchedulePlan,
)
from repro.core.planner import GlobalRanker, PhoenixPlanner, PriorityEstimator
from repro.core.scheduler import PhoenixScheduler, apply_actions, apply_schedule, diff_actions

__all__ = [
    "ClusterBackend",
    "PhoenixController",
    "ReconcileReport",
    "StateBackend",
    "HIGHEST_CRITICALITY",
    "LOWEST_DEFAULT_CRITICALITY",
    "CriticalityTag",
    "criticality_breakdown",
    "normalize_tags",
    "CriticalityTagAPI",
    "DynamicTaggingPolicy",
    "TagRule",
    "TagUpdateRejected",
    "TaggingContext",
    "business_hours_rule",
    "off_hours_rule",
    "overload_rule",
    "LPCost",
    "LPFair",
    "LPSizeError",
    "LPSolution",
    "FairnessObjective",
    "OperatorObjective",
    "RevenueObjective",
    "WeightedObjective",
    "water_fill_shares",
    "PackingHeuristic",
    "PackingResult",
    "Action",
    "ActionKind",
    "ActivationPlan",
    "RankedMicroservice",
    "SchedulePlan",
    "GlobalRanker",
    "PhoenixPlanner",
    "PriorityEstimator",
    "PhoenixScheduler",
    "apply_actions",
    "apply_schedule",
    "diff_actions",
]
