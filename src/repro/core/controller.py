"""Phoenix controller: monitor the cluster, plan, schedule and execute.

Since the engine redesign the controller is a *thin loop* over
:meth:`repro.api.engine.PhoenixEngine.reconcile`: it keeps the per-round
history and the run loop, while observation, failure detection, planning and
execution live in the engine — the same code path AdaptLab schemes and the
kubesim/chaos glue use.  It mirrors the Phoenix agent described in §4.2/§5:
the agent polls the cluster state on a fixed interval, detects node failures
or recoveries, and pushes a new target state when anything changed.

The pre-engine constructor (``PhoenixController(backend, objective, ...)``)
keeps working as a deprecation shim; new code should build a
:class:`~repro.api.engine.PhoenixEngine` and either call ``reconcile``
directly or pass it via ``PhoenixController(backend, engine=engine)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.plan import Action, ActivationPlan, SchedulePlan
from repro.core.scheduler import apply_actions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports core)
    from repro.api.engine import PhoenixEngine


class ClusterBackend(Protocol):
    """What Phoenix needs from a cluster scheduler integration."""

    def observe(self) -> ClusterState:
        """Return a snapshot of the current cluster state."""
        ...

    def execute(self, actions: list[Action]) -> None:
        """Apply a list of actions (delete / migrate / start) to the cluster."""
        ...


@dataclass
class ReconcileReport:
    """What happened during one controller reconciliation round."""

    triggered: bool
    failed_nodes: list[str] = field(default_factory=list)
    recovered_nodes: list[str] = field(default_factory=list)
    plan: ActivationPlan | None = None
    schedule: SchedulePlan | None = None
    planning_seconds: float = 0.0
    actions_executed: int = 0


class PhoenixController:
    """Automated resilience management loop over a :class:`PhoenixEngine`.

    Parameters
    ----------
    backend:
        The cluster integration to observe and act on (anything
        :func:`repro.api.engine.backend_for` accepts).
    objective:
        Operator objective used for global ranking.  **Deprecated**: build a
        :class:`~repro.api.engine.PhoenixEngine` and pass ``engine=``
        instead; the objective form keeps working as a shim.
    monitor_interval:
        Seconds between state observations (15 s in the paper's deployment;
        purely informational here — callers drive the loop explicitly or via
        :meth:`run` with a simulated clock).
    allow_migration / allow_deletion:
        Passed through to the packing heuristic (legacy form only).
    engine:
        A fully configured engine; mutually exclusive with ``objective`` and
        the packing flags.
    """

    def __init__(
        self,
        backend: ClusterBackend,
        objective: OperatorObjective | None = None,
        monitor_interval: float = 15.0,
        allow_migration: bool = True,
        allow_deletion: bool = True,
        *,
        engine: "PhoenixEngine | None" = None,
    ) -> None:
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        if (engine is None) == (objective is None):
            raise TypeError("pass exactly one of `objective` (deprecated) or `engine`")
        if engine is None:
            warnings.warn(
                "PhoenixController(backend, objective, ...) is deprecated; build a "
                "repro.api.PhoenixEngine (e.g. repro.api.engine(objective)) and pass "
                "engine=..., or call engine.reconcile(backend) directly",
                DeprecationWarning,
                stacklevel=2,
            )
            from repro.api.config import EngineConfig
            from repro.api.engine import PhoenixEngine

            engine = PhoenixEngine(
                EngineConfig(
                    objective=objective,
                    allow_migration=allow_migration,
                    allow_deletion=allow_deletion,
                    monitor_interval=monitor_interval,
                )
            )
        self.backend = backend
        self.engine = engine
        self.monitor_interval = monitor_interval
        self.history: list[ReconcileReport] = []

    # -- legacy component views --------------------------------------------------------
    @property
    def planner(self):
        """The engine's ranking stage (a ``PhoenixPlanner`` by default)."""
        return self.engine.ranker

    @property
    def scheduler(self):
        """Legacy view: a ``PhoenixScheduler``-shaped facade over the engine.

        The engine's pipeline owns the actual packer/differ; this view exists
        so pre-engine code poking ``controller.scheduler.packer`` keeps
        working.
        """
        return _SchedulerView(self.engine)

    # -- single round ------------------------------------------------------------
    def reconcile(self, force: bool = False) -> ReconcileReport:
        """Observe, detect changes, and (if anything changed) plan + execute."""
        report = self.engine.reconcile(self.backend, force=force)
        self.history.append(report)
        return report

    # -- continuous operation -------------------------------------------------------
    def run(self, rounds: int) -> list[ReconcileReport]:
        """Run ``rounds`` reconciliation rounds back to back.

        Real deployments sleep ``monitor_interval`` between rounds; simulated
        environments advance their own clock, so no sleeping happens here.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return [self.reconcile() for _ in range(rounds)]

    def reset(self) -> None:
        """Forget detection state and history (used when re-running scenarios)."""
        self.engine.reset()
        self.history.clear()


class _SchedulerView:
    """``PhoenixScheduler``-compatible facade over an engine's pipeline."""

    def __init__(self, engine: "PhoenixEngine") -> None:
        self._engine = engine

    @property
    def packer(self):
        return self._engine.packer

    def schedule(self, state: ClusterState, plan: ActivationPlan) -> SchedulePlan:
        return self._engine.schedule(state, plan)


class StateBackend:
    """A trivial backend over a bare :class:`ClusterState`.

    AdaptLab uses this when action latencies do not matter: actions are
    applied to the state instantaneously through
    :func:`repro.core.scheduler.apply_actions` — the same code path the
    engine's default executor uses.
    """

    def __init__(self, state: ClusterState) -> None:
        self.state = state

    def observe(self) -> ClusterState:
        return self.state

    def execute(self, actions: list[Action]) -> None:
        apply_actions(self.state, actions)
