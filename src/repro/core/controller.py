"""Phoenix controller: monitor the cluster, plan, schedule and execute.

The controller ties the planner and scheduler to an underlying cluster
through a small :class:`ClusterBackend` protocol, so the same controller
drives both the Kubernetes-like simulator (:mod:`repro.kubesim`) and the
pure-state AdaptLab environments.  It mirrors the Phoenix agent described in
§4.2/§5: the agent polls the cluster state on a fixed interval, detects node
failures or recoveries, and pushes a new target state when anything changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.plan import Action, ActivationPlan, SchedulePlan
from repro.core.planner import PhoenixPlanner
from repro.core.scheduler import PhoenixScheduler


class ClusterBackend(Protocol):
    """What Phoenix needs from a cluster scheduler integration."""

    def observe(self) -> ClusterState:
        """Return a snapshot of the current cluster state."""
        ...

    def execute(self, actions: list[Action]) -> None:
        """Apply a list of actions (delete / migrate / start) to the cluster."""
        ...


@dataclass
class ReconcileReport:
    """What happened during one controller reconciliation round."""

    triggered: bool
    failed_nodes: list[str] = field(default_factory=list)
    recovered_nodes: list[str] = field(default_factory=list)
    plan: ActivationPlan | None = None
    schedule: SchedulePlan | None = None
    planning_seconds: float = 0.0
    actions_executed: int = 0


class PhoenixController:
    """Automated resilience management loop.

    Parameters
    ----------
    backend:
        The cluster integration to observe and act on.
    objective:
        Operator objective used for global ranking.
    monitor_interval:
        Seconds between state observations (15 s in the paper's deployment;
        purely informational here — callers drive the loop explicitly or via
        :meth:`run` with a simulated clock).
    allow_migration / allow_deletion:
        Passed through to the packing heuristic.
    """

    def __init__(
        self,
        backend: ClusterBackend,
        objective: OperatorObjective,
        monitor_interval: float = 15.0,
        allow_migration: bool = True,
        allow_deletion: bool = True,
    ) -> None:
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        self.backend = backend
        self.monitor_interval = monitor_interval
        self.planner = PhoenixPlanner(objective)
        self.scheduler = PhoenixScheduler(
            allow_migration=allow_migration, allow_deletion=allow_deletion
        )
        self._known_failed: set[str] | None = None
        self.history: list[ReconcileReport] = []

    # -- failure detection -----------------------------------------------------
    def _detect_changes(self, state: ClusterState) -> tuple[list[str], list[str]]:
        current_failed = {n.name for n in state.failed_nodes()}
        if self._known_failed is None:
            self._known_failed = current_failed
            return sorted(current_failed), []
        newly_failed = sorted(current_failed - self._known_failed)
        recovered = sorted(self._known_failed - current_failed)
        self._known_failed = current_failed
        return newly_failed, recovered

    # -- single round ------------------------------------------------------------
    def reconcile(self, force: bool = False) -> ReconcileReport:
        """Observe, detect changes, and (if anything changed) plan + execute."""
        state = self.backend.observe()
        failed, recovered = self._detect_changes(state)
        triggered = force or bool(failed) or bool(recovered)
        report = ReconcileReport(
            triggered=triggered, failed_nodes=failed, recovered_nodes=recovered
        )
        if not triggered:
            self.history.append(report)
            return report

        started = time.perf_counter()
        plan = self.planner.plan(state)
        schedule = self.scheduler.schedule(state, plan)
        report.planning_seconds = time.perf_counter() - started
        report.plan = plan
        report.schedule = schedule

        actions = schedule.ordered_actions()
        self.backend.execute(actions)
        report.actions_executed = len(actions)
        self.history.append(report)
        return report

    # -- continuous operation -------------------------------------------------------
    def run(self, rounds: int) -> list[ReconcileReport]:
        """Run ``rounds`` reconciliation rounds back to back.

        Real deployments sleep ``monitor_interval`` between rounds; simulated
        environments advance their own clock, so no sleeping happens here.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return [self.reconcile() for _ in range(rounds)]

    def reset(self) -> None:
        """Forget detection state and history (used when re-running scenarios)."""
        self._known_failed = None
        self.history.clear()


class StateBackend:
    """A trivial backend over a bare :class:`ClusterState`.

    AdaptLab uses this when action latencies do not matter: actions are
    applied to the state instantaneously.
    """

    def __init__(self, state: ClusterState) -> None:
        self.state = state

    def observe(self) -> ClusterState:
        return self.state

    def execute(self, actions: list[Action]) -> None:
        from repro.core.plan import ActionKind

        for action in actions:
            if action.kind is ActionKind.DELETE:
                if self.state.node_of(action.replica) is not None:
                    self.state.unassign(action.replica)
            elif action.kind is ActionKind.MIGRATE:
                if self.state.node_of(action.replica) is not None:
                    self.state.unassign(action.replica)
                self.state.assign(action.replica, action.target_node)
            elif action.kind is ActionKind.START:
                current = self.state.node_of(action.replica)
                if current is not None:
                    # Stale placement on a failed node: drop it first.
                    self.state.unassign(action.replica)
                self.state.assign(action.replica, action.target_node)
