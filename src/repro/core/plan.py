"""Plan and action data model shared by the planner, scheduler and agent."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple

from repro.cluster.state import ReplicaId


class RankedMicroservice(NamedTuple):
    """One entry of the planner's globally ordered activation list.

    A named tuple: the planner creates one per container per round, so
    C-speed construction matters at 100k-node scale.
    """

    app: str
    microservice: str
    #: CPU units of the full microservice (all replicas), used for reporting.
    cpu: float = 0.0


@dataclass
class ActivationPlan:
    """Output of the Phoenix planner (§4.1).

    ``ranked`` is the global activation order across applications;
    ``activated`` is the prefix that fits within the available capacity.
    """

    ranked: list[RankedMicroservice] = field(default_factory=list)
    activated: list[RankedMicroservice] = field(default_factory=list)
    capacity: float = 0.0
    objective: str = "unspecified"

    def activated_set(self) -> set[tuple[str, str]]:
        # entry[:2] == (app, microservice): C-speed tuple slice
        return {entry[:2] for entry in self.activated}

    def rank_index(self) -> dict[tuple[str, str], int]:
        """(app, microservice) -> position in the global ranked list.

        The index is cached against the identity of the ``ranked`` list, so
        callers that rebind or rebuild ``ranked`` (the planner prepends
        pinned entries after ranking) always get a consistent mapping.
        In-place mutation of the same list object is not tracked.
        """
        ranked = self.ranked
        if getattr(self, "_rank_index_source", None) is not ranked:
            self._rank_index = {e[:2]: i for i, e in enumerate(ranked)}
            self._rank_index_source = ranked
        return self._rank_index

    def activated_for(self, app: str) -> list[str]:
        return [e.microservice for e in self.activated if e.app == app]

    def __iter__(self) -> Iterator[RankedMicroservice]:
        return iter(self.activated)

    def __len__(self) -> int:
        return len(self.activated)


class ActionKind(enum.Enum):
    """The three action types the Phoenix agent executes (§4.2, Appendix E)."""

    DELETE = "delete"
    MIGRATE = "migrate"
    START = "start"


@dataclass(frozen=True, slots=True)
class Action:
    """A single scheduling action to be applied to the cluster scheduler."""

    kind: ActionKind
    replica: ReplicaId
    #: Target node for START and MIGRATE; None for DELETE.
    target_node: str | None = None
    #: Source node for MIGRATE and DELETE; None for START.
    source_node: str | None = None

    def __post_init__(self) -> None:
        if self.kind in (ActionKind.START, ActionKind.MIGRATE) and self.target_node is None:
            raise ValueError(f"{self.kind.value} action requires a target node")
        if self.kind is ActionKind.DELETE and self.target_node is not None:
            raise ValueError("delete action must not carry a target node")


def make_action(
    kind: ActionKind,
    replica: ReplicaId,
    target_node: str | None = None,
    source_node: str | None = None,
) -> Action:
    """Construct an :class:`Action` without re-validating the kind/node rules.

    For hot emitters (the scheduler differ) that build actions whose shape is
    correct by construction; everyone else should use ``Action(...)``.
    """
    action = object.__new__(Action)
    object.__setattr__(action, "kind", kind)
    object.__setattr__(action, "replica", replica)
    object.__setattr__(action, "target_node", target_node)
    object.__setattr__(action, "source_node", source_node)
    return action


@dataclass
class SchedulePlan:
    """Output of the Phoenix scheduler: target assignment plus action list."""

    target_assignment: dict[ReplicaId, str] = field(default_factory=dict)
    actions: list[Action] = field(default_factory=list)
    #: Microservices (app, name) the packing heuristic could not place.
    unplaced: list[tuple[str, str]] = field(default_factory=list)

    def actions_of(self, kind: ActionKind) -> list[Action]:
        return [a for a in self.actions if a.kind is kind]

    @property
    def deletions(self) -> list[Action]:
        return self.actions_of(ActionKind.DELETE)

    @property
    def migrations(self) -> list[Action]:
        return self.actions_of(ActionKind.MIGRATE)

    @property
    def starts(self) -> list[Action]:
        return self.actions_of(ActionKind.START)

    def ordered_actions(self) -> list[Action]:
        """Actions in execution order: deletions, migrations, then starts.

        Deletions free capacity first, migrations consolidate, and starts
        consume the freed capacity — the order the Phoenix agent uses.
        """
        return [*self.deletions, *self.migrations, *self.starts]

    def __len__(self) -> int:
        return len(self.actions)


def merge_action_lists(plans: Iterable[SchedulePlan]) -> list[Action]:
    """Concatenate ordered actions from multiple plans (utility for tooling)."""
    merged: list[Action] = []
    for plan in plans:
        merged.extend(plan.ordered_actions())
    return merged
