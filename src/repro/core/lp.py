"""Integer Linear Program formulations of Phoenix planning (§4, Appendix C).

The paper formulates criticality-aware planning and placement as an ILP with
activation variables ``x_ij`` (microservice *j* of application *i* active)
and placement variables ``y_ijk`` (microservice *j* of application *i* on
node *k*), subject to

* Eq. 1  intra-application criticality ordering,
* Eq. 2  dependency constraints (an active microservice needs an active
  predecessor),
* Eq. 3  every active microservice is placed on exactly one node,
* Eq. 4  node capacity.

Two objectives are provided: :class:`LPCost` (revenue maximization) and
:class:`LPFair` (water-filled max-min fairness, Appendix C).  The paper uses
Gurobi; this reproduction uses ``scipy.optimize.milp`` (HiGHS), which is
available offline.  As in the paper, the LP is a *guide* — it scales poorly
beyond O(1000) nodes, which Figure 8b demonstrates — so a size guard and a
time limit are built in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import microservice_revenue_rate, water_fill_shares
from repro.core.plan import ActivationPlan, RankedMicroservice, SchedulePlan, Action, ActionKind


class LPSizeError(RuntimeError):
    """Raised when the ILP would be too large to build, mirroring the paper's
    observation that LP-based planning does not scale to real cluster sizes."""


@dataclass
class LPSolution:
    """Raw ILP solution: activation decisions and placements."""

    activated: set[tuple[str, str]] = field(default_factory=set)
    placement: dict[tuple[str, str], str] = field(default_factory=dict)
    objective_value: float = 0.0
    solve_time: float = 0.0
    status: str = "unknown"

    def to_activation_plan(self, state: ClusterState, objective: str) -> ActivationPlan:
        entries = [
            RankedMicroservice(app, ms, state.microservice(app, ms).total_resources.cpu)
            for app, ms in sorted(self.activated)
        ]
        return ActivationPlan(
            ranked=list(entries),
            activated=list(entries),
            capacity=state.total_capacity().cpu,
            objective=objective,
        )

    def to_schedule_plan(self, state: ClusterState) -> SchedulePlan:
        """Translate placements into a schedule plan (single-replica model)."""
        target: dict[ReplicaId, str] = {}
        actions: list[Action] = []
        live = state.assignments
        for (app, ms), node in self.placement.items():
            replica = ReplicaId(app, ms, 0)
            target[replica] = node
            if replica not in live:
                actions.append(Action(ActionKind.START, replica, target_node=node))
            elif live[replica] != node:
                actions.append(
                    Action(ActionKind.MIGRATE, replica, target_node=node, source_node=live[replica])
                )
        for replica, node in live.items():
            if (replica.app, replica.microservice) not in self.placement and not state.node(node).failed:
                actions.append(Action(ActionKind.DELETE, replica, source_node=node))
        return SchedulePlan(target_assignment=target, actions=actions)


class _ILPBuilder:
    """Shared constraint construction for LPCost and LPFair."""

    def __init__(self, state: ClusterState, max_variables: int = 2_000_000) -> None:
        self.state = state
        self.apps = state.applications
        self.nodes = [n for n in state.healthy_nodes()]
        self.ms_index: list[tuple[str, str]] = []
        for app_name in sorted(self.apps):
            for ms_name in sorted(self.apps[app_name].microservices):
                self.ms_index.append((app_name, ms_name))
        self.n_ms = len(self.ms_index)
        self.n_nodes = len(self.nodes)
        n_vars = self.n_ms + self.n_ms * self.n_nodes
        if n_vars > max_variables:
            raise LPSizeError(
                f"ILP would need {n_vars} variables for {self.n_ms} microservices on "
                f"{self.n_nodes} nodes; refusing to build (limit {max_variables})."
            )
        self.n_vars = n_vars
        self.ms_pos = {key: i for i, key in enumerate(self.ms_index)}

    # Variable layout: [x_0 .. x_{M-1}, y_{0,0} .. y_{M-1,N-1}] row-major by ms.
    def x(self, app: str, ms: str) -> int:
        return self.ms_pos[(app, ms)]

    def y(self, app: str, ms: str, node_index: int) -> int:
        return self.n_ms + self.ms_pos[(app, ms)] * self.n_nodes + node_index

    def resource(self, app: str, ms: str) -> float:
        return self.apps[app].get(ms).total_resources.cpu

    def constraints(self) -> list[LinearConstraint]:
        rows: list[tuple[dict[int, float], float, float]] = []

        # Eq. 1 — criticality ordering inside each application:
        # x_j >= x_k whenever C(m_k) > C(m_j).  Instead of the quadratic
        # number of pairwise rows, each container of a lower level is bounded
        # by the *average* activation of the next-higher level:
        #     x_low <= (1/|L|) * sum_{high in L} x_high
        # Since the variables are binary, x_low can only be 1 when every
        # higher-level container is active — the same semantics with one row
        # per container.
        for app_name, app in self.apps.items():
            by_level: dict[int, list[str]] = {}
            for ms in app:
                by_level.setdefault(ms.criticality.level, []).append(ms.name)
            levels = sorted(by_level)
            for higher, lower in zip(levels, levels[1:]):
                higher_names = by_level[higher]
                weight = 1.0 / len(higher_names)
                for ms_low in by_level[lower]:
                    coeffs = {self.x(app_name, ms_high): weight for ms_high in higher_names}
                    coeffs[self.x(app_name, ms_low)] = coeffs.get(self.x(app_name, ms_low), 0.0) - 1.0
                    rows.append((coeffs, 0.0, np.inf))

        # Eq. 2 — dependency constraints: sum(pred x) >= x_k.
        for app_name, app in self.apps.items():
            if not app.has_dependency_graph:
                continue
            for ms in app:
                preds = app.predecessors(ms.name)
                if not preds:
                    continue
                coeffs = {self.x(app_name, p): 1.0 for p in preds}
                coeffs[self.x(app_name, ms.name)] = coeffs.get(self.x(app_name, ms.name), 0.0) - 1.0
                rows.append((coeffs, 0.0, np.inf))

        # Eq. 3 — placement: sum_k y_ijk == x_ij.
        for app_name, ms_name in self.ms_index:
            coeffs = {self.y(app_name, ms_name, k): 1.0 for k in range(self.n_nodes)}
            coeffs[self.x(app_name, ms_name)] = -1.0
            rows.append((coeffs, 0.0, 0.0))

        # Eq. 4 — node capacity.
        for k, node in enumerate(self.nodes):
            coeffs = {
                self.y(app_name, ms_name, k): self.resource(app_name, ms_name)
                for app_name, ms_name in self.ms_index
            }
            rows.append((coeffs, -np.inf, node.capacity.cpu))

        return [self._to_constraint(rows)]

    def _to_constraint(self, rows: list[tuple[dict[int, float], float, float]]) -> LinearConstraint:
        data, row_idx, col_idx, lower, upper = [], [], [], [], []
        for i, (coeffs, lo, hi) in enumerate(rows):
            for col, value in coeffs.items():
                data.append(value)
                row_idx.append(i)
                col_idx.append(col)
            lower.append(lo)
            upper.append(hi)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), self.n_vars)
        )
        return LinearConstraint(matrix, np.asarray(lower), np.asarray(upper))

    def solve(
        self,
        objective: np.ndarray,
        extra_constraints: list[LinearConstraint] | None = None,
        time_limit: float = 60.0,
    ) -> LPSolution:
        constraints = self.constraints()
        if extra_constraints:
            constraints.extend(extra_constraints)
        integrality = np.ones(self.n_vars)
        bounds = Bounds(lb=np.zeros(self.n_vars), ub=np.ones(self.n_vars))
        started = time.perf_counter()
        result = milp(
            c=-objective,  # milp minimizes
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options={"time_limit": time_limit, "presolve": True},
        )
        elapsed = time.perf_counter() - started
        solution = LPSolution(solve_time=elapsed, status=result.status and str(result.status) or "ok")
        if result.x is None:
            solution.status = f"infeasible({result.message})"
            return solution
        x = result.x
        solution.objective_value = float(objective @ x)
        for (app, ms), pos in self.ms_pos.items():
            if x[pos] > 0.5:
                solution.activated.add((app, ms))
                for k in range(self.n_nodes):
                    if x[self.y(app, ms, k)] > 0.5:
                        solution.placement[(app, ms)] = self.nodes[k].name
                        break
        solution.status = "optimal"
        return solution


class LPCost:
    """Revenue-maximizing ILP (Appendix C, revenue objective)."""

    name = "lp-cost"

    def __init__(self, time_limit: float = 60.0, max_variables: int = 2_000_000) -> None:
        self.time_limit = time_limit
        self.max_variables = max_variables

    def solve(self, state: ClusterState) -> LPSolution:
        builder = _ILPBuilder(state, max_variables=self.max_variables)
        objective = np.zeros(builder.n_vars)
        for (app, ms), pos in builder.ms_pos.items():
            application = builder.apps[app]
            objective[pos] = microservice_revenue_rate(application, application.get(ms))
        return builder.solve(objective, time_limit=self.time_limit)

    def plan(self, state: ClusterState) -> ActivationPlan:
        return self.solve(state).to_activation_plan(state, self.name)


class LPFair:
    """Water-filled max-min fairness ILP (Appendix C, Eq. 6-7)."""

    name = "lp-fair"

    def __init__(self, time_limit: float = 60.0, max_variables: int = 2_000_000) -> None:
        self.time_limit = time_limit
        self.max_variables = max_variables

    def solve(self, state: ClusterState) -> LPSolution:
        builder = _ILPBuilder(state, max_variables=self.max_variables)
        demands = {name: app.total_demand().cpu for name, app in builder.apps.items()}
        capacity = state.total_capacity().cpu
        fair_shares = water_fill_shares(demands, capacity)

        # Cap each application's allocation at its water-fill share (Eq. 7),
        # then maximize total activated resources, which pushes every
        # application as close to its share as indivisibility allows.
        rows: list[tuple[dict[int, float], float, float]] = []
        for app_name in builder.apps:
            coeffs = {
                builder.x(app_name, ms_name): builder.resource(app_name, ms_name)
                for a, ms_name in builder.ms_index
                if a == app_name
            }
            rows.append((coeffs, -np.inf, fair_shares[app_name] + 1e-9))
        extra = [builder._to_constraint(rows)] if rows else None

        objective = np.zeros(builder.n_vars)
        for (app, ms), pos in builder.ms_pos.items():
            objective[pos] = builder.resource(app, ms)
        return builder.solve(objective, extra_constraints=extra, time_limit=self.time_limit)

    def plan(self, state: ClusterState) -> ActivationPlan:
        return self.solve(state).to_activation_plan(state, self.name)
