"""Setup shim for environments without the `wheel` package (offline installs)."""
from setuptools import setup

setup()
